package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"highrpm/internal/tsdb"
)

// startServer boots a Server on a loopback port and registers LIFO
// cleanups: the HTTP client's idle pool is flushed first, then the server
// shuts down, and (because checkNoLeaks is armed before this is called)
// the leak check runs last.
func startServer(t *testing.T, reg *Registry, opts ServerOptions) (*Server, *http.Client) {
	t.Helper()
	s := NewServer(reg, opts)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Shutdown(2 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return s, &http.Client{Transport: tr}
}

func get(t *testing.T, c *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

// seededStore ingests three seconds of history for two nodes.
func seededStore(t *testing.T) *tsdb.Store {
	t.Helper()
	st := tsdb.New(tsdb.DefaultOptions())
	for _, node := range []string{"node-00", "node-01"} {
		for i := 0; i < 3; i++ {
			smp := tsdb.Sample{
				PNode: 100 + float64(i), PCPU: 50, PMEM: 10,
				PNodePrime: 99, IPMI: math.NaN(),
			}
			if err := st.Ingest(node, float64(i), smp); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

func TestServerMetricsEndpoint(t *testing.T) {
	checkNoLeaks(t)
	reg := NewRegistry()
	reg.Counter("demo_total", "A demo counter.").Add(7)
	s, c := startServer(t, reg, DefaultServerOptions())

	code, body := get(t, c, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	out := string(body)
	for _, want := range []string{
		"demo_total 7\n",
		// The server meters its own serving.
		`highrpm_http_requests_total{path="/metrics"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	// The scrape counter reflects completed expositions on the next scrape.
	_, body = get(t, c, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(string(body), "highrpm_http_scrapes_total 1") {
		t.Errorf("second scrape should report 1 completed scrape:\n%s", body)
	}
}

func TestServerSeriesEndpoint(t *testing.T) {
	checkNoLeaks(t)
	reg := NewRegistry()
	st := seededStore(t)
	s, c := startServer(t, reg, DefaultServerOptions())
	s.SetStore(st)

	code, body := get(t, c, "http://"+s.Addr()+"/api/v1/series?node=node-00&channel=p_node&from=0&to=10")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", code, body)
	}
	var sb tsdb.SeriesBody
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sb.NodeID != "node-00" || sb.Channel != "p_node" || len(sb.Points) != 3 {
		t.Fatalf("unexpected body: %+v", sb)
	}
	if float64(sb.Points[2].Value) != 102 {
		t.Errorf("last value = %v, want 102", sb.Points[2].Value)
	}

	// Byte-for-byte agreement with the shared encoder: the HTTP body must
	// equal json.NewEncoder output of Store.QuerySeries — the same bytes
	// the TCP KindSeries reply and highrpm-query -json produce.
	want, err := st.QuerySeries("node-00", "p_node", 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, buf.Bytes()) {
		t.Errorf("HTTP series bytes differ from shared encoding:\nhttp: %s\nwant: %s", body, buf.Bytes())
	}

	// NaN IPMI values must cross the wire as JSON null.
	_, body = get(t, c, "http://"+s.Addr()+"/api/v1/series?node=node-00&channel=ipmi")
	if !bytes.Contains(body, []byte(`"v":null`)) {
		t.Errorf("NaN channel should encode null values: %s", body)
	}

	// Cluster aggregate: empty node sums across nodes.
	_, body = get(t, c, "http://"+s.Addr()+"/api/v1/series?channel=p_node")
	var agg tsdb.SeriesBody
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatalf("decode aggregate: %v", err)
	}
	if agg.NodeID != "" || len(agg.Points) != 3 || float64(agg.Points[0].Value) != 200 {
		t.Errorf("aggregate body: %+v", agg)
	}
}

func TestServerSeriesBadParams(t *testing.T) {
	checkNoLeaks(t)
	s, c := startServer(t, NewRegistry(), DefaultServerOptions())
	s.SetStore(seededStore(t))

	for _, q := range []string{
		"from=abc",
		"to=xyz",
		"res=1.5",
		"res=7",         // not a known resolution
		"channel=bogus", // unknown channel
	} {
		code, body := get(t, c, "http://"+s.Addr()+"/api/v1/series?"+q)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", q, code, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: want JSON error body, got %s", q, body)
		}
	}
}

func TestServerQueryEndpoint(t *testing.T) {
	checkNoLeaks(t)
	s, c := startServer(t, NewRegistry(), DefaultServerOptions())
	s.SetStore(seededStore(t))

	// All nodes: one single-point body each, sorted by node.
	code, body := get(t, c, "http://"+s.Addr()+"/api/v1/query")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var out []tsdb.SeriesBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].NodeID != "node-00" || out[1].NodeID != "node-01" {
		t.Fatalf("unexpected instant read: %+v", out)
	}
	for _, sb := range out {
		if len(sb.Points) != 1 || float64(sb.Points[0].Value) != 102 {
			t.Errorf("node %s latest: %+v", sb.NodeID, sb.Points)
		}
	}

	// Single node.
	_, body = get(t, c, "http://"+s.Addr()+"/api/v1/query?node=node-01&channel=p_cpu")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Channel != "p_cpu" || float64(out[0].Points[0].Value) != 50 {
		t.Errorf("single-node instant read: %+v", out)
	}

	// Unknown node is a client error.
	code, _ = get(t, c, "http://"+s.Addr()+"/api/v1/query?node=nope")
	if code != http.StatusBadRequest {
		t.Errorf("unknown node: status = %d, want 400", code)
	}
}

func TestServerNoStore503(t *testing.T) {
	checkNoLeaks(t)
	s, c := startServer(t, NewRegistry(), DefaultServerOptions())
	for _, path := range []string{"/api/v1/series", "/api/v1/query"} {
		code, body := get(t, c, "http://"+s.Addr()+path)
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s without store: status = %d, want 503 (%s)", path, code, body)
		}
	}
}

func TestServerHealthAndReadiness(t *testing.T) {
	checkNoLeaks(t)
	s, c := startServer(t, NewRegistry(), DefaultServerOptions())

	code, body := get(t, c, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"status":"ok"`)) {
		t.Errorf("/healthz = %d %s", code, body)
	}

	// No health callback: ready by default.
	code, body = get(t, c, "http://"+s.Addr()+"/readyz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"status":"ready"`)) {
		t.Errorf("default /readyz = %d %s", code, body)
	}

	// Degraded agents: still 200, but status says so.
	s.SetHealth(func() Health { return Health{Ready: true, Degraded: true, Detail: "1 agent degraded"} })
	code, body = get(t, c, "http://"+s.Addr()+"/readyz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"status":"degraded"`)) {
		t.Errorf("degraded /readyz = %d %s", code, body)
	}
	if !bytes.Contains(body, []byte("1 agent degraded")) {
		t.Errorf("degraded detail missing: %s", body)
	}

	// Not ready: 503.
	s.SetHealth(func() Health { return Health{Ready: false} })
	code, body = get(t, c, "http://"+s.Addr()+"/readyz")
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(`"status":"unavailable"`)) {
		t.Errorf("unavailable /readyz = %d %s", code, body)
	}
}

func TestServerPprofGate(t *testing.T) {
	checkNoLeaks(t)
	// Off by default.
	s, c := startServer(t, NewRegistry(), DefaultServerOptions())
	code, _ := get(t, c, "http://"+s.Addr()+"/debug/pprof/")
	if code != http.StatusNotFound {
		t.Errorf("pprof disabled: status = %d, want 404", code)
	}
	// On when enabled.
	opts := DefaultServerOptions()
	opts.EnablePprof = true
	s2, c2 := startServer(t, NewRegistry(), opts)
	code, body := get(t, c2, "http://"+s2.Addr()+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof enabled: status = %d, body %d bytes", code, len(body))
	}
}

func TestServerShutdownIdempotent(t *testing.T) {
	checkNoLeaks(t)
	s := NewServer(NewRegistry(), DefaultServerOptions())
	// Before Listen both are no-ops.
	if err := s.Shutdown(time.Second); err != nil {
		t.Errorf("shutdown before listen: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close before listen: %v", err)
	}
	if s.Addr() != "" {
		t.Errorf("addr before listen = %q, want empty", s.Addr())
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Error("addr after listen is empty")
	}
	if err := s.Shutdown(time.Second); err != nil {
		t.Errorf("first shutdown: %v", err)
	}
	if err := s.Shutdown(time.Second); err != nil && err != http.ErrServerClosed {
		t.Errorf("second shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close after shutdown: %v", err)
	}
}
