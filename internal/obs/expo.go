package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: gather callbacks run
// first, then families are written in sorted name order and each family's
// series in sorted label-value order, so identical registry state always
// produces identical bytes — the property the golden exposition test
// pins.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams, cbs := r.snapshot()
	for _, fn := range cbs {
		fn()
	}
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// sortedSeries snapshots a family's series in deterministic label order.
func (f *family) sortedSeries() []*instrument {
	f.mu.Lock()
	out := make([]*instrument, 0, len(f.series))
	//lint:ignore maporder collected then sorted immediately below
	for _, m := range f.series {
		out = append(out, m)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func (f *family) write(bw *bufio.Writer) {
	series := f.sortedSeries()
	if len(series) == 0 {
		return
	}
	if f.help != "" {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
	}
	bw.WriteString("# TYPE ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(f.kind.String())
	bw.WriteByte('\n')
	for _, m := range series {
		switch f.kind {
		case KindHistogram:
			f.writeHistogram(bw, m)
		default:
			writeSample(bw, f.name, f.labels, m.labelValues, "", "", m.load())
		}
	}
}

// writeHistogram renders one series' cumulative buckets, sum and count.
func (f *family) writeHistogram(bw *bufio.Writer, m *instrument) {
	m.hmu.Lock()
	counts := append([]uint64(nil), m.bcounts...)
	sum, count := m.hsum, m.hcount
	m.hmu.Unlock()
	for i, ub := range f.buckets {
		writeSample(bw, f.name+"_bucket", f.labels, m.labelValues, "le", formatFloat(ub), float64(counts[i]))
	}
	writeSample(bw, f.name+"_bucket", f.labels, m.labelValues, "le", "+Inf", float64(count))
	writeSample(bw, f.name+"_sum", f.labels, m.labelValues, "", "", sum)
	writeSample(bw, f.name+"_count", f.labels, m.labelValues, "", "", float64(count))
}

// writeSample renders one exposition line. extraName/extraValue append a
// synthetic label (the histogram "le") after the family labels.
func writeSample(bw *bufio.Writer, name string, labels, values []string, extraName, extraValue string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, ln := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(ln)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample value: shortest round-trip form, with the
// Prometheus spellings for the non-finite values.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
