package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"highrpm/internal/tsdb"
)

// Health is a component's answer to the readiness probes. Ready=false
// means the service cannot serve (returns 503); Degraded=true with
// Ready=true is the §6.4.6 posture — agents are serving local estimates —
// and reports 200 with status "degraded" so orchestrators keep routing
// while dashboards show the impairment.
type Health struct {
	Ready    bool   `json:"-"`
	Degraded bool   `json:"-"`
	Status   string `json:"status"`
	Detail   string `json:"detail,omitempty"`
}

// ServerOptions configures the embeddable HTTP server.
type ServerOptions struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and cost CPU, so they
	// are opt-in per deployment.
	EnablePprof bool
	// ReadHeaderTimeout bounds reading a request's header (default 5s) so
	// an idle or hostile peer cannot pin a connection goroutine.
	ReadHeaderTimeout time.Duration
}

// DefaultServerOptions returns the deployment defaults.
func DefaultServerOptions() ServerOptions {
	return ServerOptions{ReadHeaderTimeout: 5 * time.Second}
}

// Server is the embeddable observability endpoint: /metrics in Prometheus
// text format, /api/v1/query and /api/v1/series JSON over the tsdb query
// API, /healthz and /readyz probes, and optional pprof. Create with
// NewServer, wire SetStore/SetHealth, then Listen.
type Server struct {
	reg  *Registry
	opts ServerOptions

	mu     sync.Mutex
	store  *tsdb.Store
	health func() Health

	srv *http.Server
	ln  net.Listener
	wg  sync.WaitGroup

	scrapes  Counter
	requests CounterVec
}

// NewServer wraps a registry. The server meters itself: every scrape and
// API request lands in highrpm_http_requests_total, so the cost of being
// observed is itself observable.
func NewServer(reg *Registry, opts ServerOptions) *Server {
	if opts.ReadHeaderTimeout <= 0 {
		opts.ReadHeaderTimeout = DefaultServerOptions().ReadHeaderTimeout
	}
	return &Server{
		reg:  reg,
		opts: opts,
		scrapes: reg.Counter("highrpm_http_scrapes_total",
			"Completed /metrics expositions."),
		requests: reg.CounterVec("highrpm_http_requests_total",
			"HTTP requests served, by path.", "path"),
	}
}

// SetStore attaches the history store behind /api/v1/query and
// /api/v1/series. Without one the API endpoints answer 503.
func (s *Server) SetStore(st *tsdb.Store) {
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
}

// SetHealth attaches the readiness callback behind /readyz. Without one
// the server reports ready as long as it is serving.
func (s *Server) SetHealth(fn func() Health) {
	s.mu.Lock()
	s.health = fn
	s.mu.Unlock()
}

// Listen binds addr ("host:port"; ":0" picks a free port) and serves in a
// background goroutine. It returns immediately; Addr reports the bound
// address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/v1/series", s.handleSeries)
	mux.HandleFunc("/api/v1/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: s.opts.ReadHeaderTimeout}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve always returns a non-nil error; ErrServerClosed is the
		// expected Close/Shutdown outcome.
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server gracefully: in-flight requests finish,
// idle connections close, and whatever remains after grace is cut. Safe
// to call before Listen (a no-op) and more than once.
func (s *Server) Shutdown(grace time.Duration) error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// The grace expired with requests still in flight; cut them.
		if cerr := s.srv.Close(); err == nil {
			err = cerr
		}
	}
	s.wg.Wait()
	return err
}

// Close stops the server immediately, cutting in-flight requests.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	s.requests.With("/metrics").Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		return // client went away mid-scrape; nothing to salvage
	}
	s.scrapes.Inc()
}

// getStore fetches the attached store, answering 503 when there is none.
func (s *Server) getStore(w http.ResponseWriter) (*tsdb.Store, bool) {
	s.mu.Lock()
	st := s.store
	s.mu.Unlock()
	if st == nil {
		jsonError(w, http.StatusServiceUnavailable, "no history store attached")
		return nil, false
	}
	return st, true
}

// handleSeries answers /api/v1/series: one node's channel (or the
// cluster aggregate with node empty) over [from, to] at res seconds,
// encoded exactly like a KindSeries TCP reply and highrpm-query -json.
func (s *Server) handleSeries(w http.ResponseWriter, req *http.Request) {
	s.requests.With("/api/v1/series").Inc()
	st, ok := s.getStore(w)
	if !ok {
		return
	}
	q := req.URL.Query()
	from, err := parseFloat(q.Get("from"), 0)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad from: "+err.Error())
		return
	}
	to, err := parseFloat(q.Get("to"), math.MaxFloat64)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad to: "+err.Error())
		return
	}
	res := 0
	if v := q.Get("res"); v != "" {
		res, err = strconv.Atoi(v)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad res: "+err.Error())
			return
		}
	}
	channel := q.Get("channel")
	if channel == "" {
		channel = string(tsdb.ChanPNode)
	}
	body, err := st.QuerySeries(q.Get("node"), channel, from, to, res)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, body)
}

// handleQuery answers /api/v1/query: the latest raw point of a channel,
// for one node or for every node with history, one single-point
// SeriesBody per node (the instant read dashboards poll).
func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	s.requests.With("/api/v1/query").Inc()
	st, ok := s.getStore(w)
	if !ok {
		return
	}
	q := req.URL.Query()
	channel := q.Get("channel")
	if channel == "" {
		channel = string(tsdb.ChanPNode)
	}
	nodes := []string{}
	if node := q.Get("node"); node != "" {
		nodes = append(nodes, node)
	} else {
		nodes = st.Nodes()
	}
	out := make([]tsdb.SeriesBody, 0, len(nodes))
	for _, node := range nodes {
		p, err := st.Latest(node, tsdb.Channel(channel))
		if err != nil {
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
		out = append(out, tsdb.SeriesBody{
			NodeID:      node,
			Channel:     channel,
			ResolutionS: int(tsdb.Raw),
			Points:      tsdb.ToSeriesPoints([]tsdb.Point{p}),
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	s.requests.With("/healthz").Inc()
	writeJSON(w, Health{Status: "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, req *http.Request) {
	s.requests.With("/readyz").Inc()
	s.mu.Lock()
	fn := s.health
	s.mu.Unlock()
	h := Health{Ready: true}
	if fn != nil {
		h = fn()
	}
	switch {
	case !h.Ready:
		h.Status = "unavailable"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(h)
		return
	case h.Degraded:
		h.Status = "degraded"
	default:
		h.Status = "ready"
	}
	writeJSON(w, h)
}

// writeJSON encodes v with encoding/json's default (compact) form plus
// the trailing newline — the same bytes json.NewEncoder produces for the
// CLI's -json output.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func parseFloat(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}
