package obs

import (
	"runtime"
	"time"
)

// SelfMeter prices the monitor's own cost — the Diamond/Stoico "what does
// energy monitoring cost?" question, answered from our own scrape. Each
// estimation tick (one sample through Monitor.Push plus its history
// record) is timed through Tick and exported as the highrpm_overhead_*
// family: a tick-latency histogram plus cumulative wall time, and at
// gather time the process-wide runtime costs (cumulative allocations,
// GC pauses, GC CPU fraction, live goroutines) that the estimation load
// dominates in a deployed monitor.
//
// Per-tick allocation deltas are deliberately not measured:
// runtime.ReadMemStats is a stop-the-world read, so taking it per tick
// would make the meter the overhead it is supposed to measure. The
// cumulative runtime stats are read once per scrape instead.
type SelfMeter struct {
	ticks Counter
	wall  Counter
	hist  Histogram
}

// TickBuckets are the default tick-latency histogram bounds in seconds:
// 10 µs to 1 s, one decade apart. A healthy software power model spends
// well under a millisecond per sample; the top buckets exist to make
// pathology visible, not to flatter the common case.
var TickBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// NewSelfMeter registers the highrpm_overhead_* metrics on reg and
// returns the meter that feeds them. The runtime-derived gauges are
// refreshed by a gather callback, so their cost (one ReadMemStats) is
// paid per scrape, not per tick.
func NewSelfMeter(reg *Registry) *SelfMeter {
	m := &SelfMeter{
		ticks: reg.Counter("highrpm_overhead_ticks_total",
			"Estimation ticks metered (one per sample processed)."),
		wall: reg.Counter("highrpm_overhead_wall_seconds_total",
			"Cumulative wall-clock time spent inside estimation ticks."),
		hist: reg.Histogram("highrpm_overhead_tick_seconds",
			"Wall-clock latency of one estimation tick.", TickBuckets),
	}
	allocBytes := reg.Counter("highrpm_overhead_alloc_bytes_total",
		"Cumulative bytes allocated by the monitor process (runtime.MemStats.TotalAlloc).")
	mallocs := reg.Counter("highrpm_overhead_mallocs_total",
		"Cumulative heap objects allocated by the monitor process.")
	gcPause := reg.Counter("highrpm_overhead_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time of the monitor process.")
	gcFrac := reg.Gauge("highrpm_overhead_gc_cpu_fraction",
		"Fraction of available CPU consumed by the GC since process start.")
	heap := reg.Gauge("highrpm_overhead_heap_bytes",
		"Live heap bytes of the monitor process (runtime.MemStats.HeapAlloc).")
	goroutines := reg.Gauge("highrpm_overhead_goroutines",
		"Goroutines live in the monitor process.")
	reg.OnGather(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		allocBytes.Set(float64(ms.TotalAlloc))
		mallocs.Set(float64(ms.Mallocs))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcFrac.Set(ms.GCCPUFraction)
		heap.Set(float64(ms.HeapAlloc))
		goroutines.Set(float64(runtime.NumGoroutine()))
	})
	return m
}

// Tick starts timing one estimation tick; the returned func stops the
// clock and records the observation. Nil-receiver safe so call sites can
// meter unconditionally: (*SelfMeter)(nil).Tick() returns a no-op.
func (m *SelfMeter) Tick() func() {
	if m == nil {
		return func() {}
	}
	start := wallClock()
	return func() {
		d := wallClock().Sub(start).Seconds()
		m.ticks.Inc()
		m.wall.Add(d)
		m.hist.Observe(d)
	}
}

// Ticks reports how many ticks the meter has recorded.
func (m *SelfMeter) Ticks() float64 { return m.ticks.Value() }

// wallClock is the single wall-clock read in this package, following the
// internal/core convention: overhead metering reports real elapsed cost
// and deliberately never feeds an estimate, so it is the justified
// exception to the no-wall-clock rule the model packages live under.
func wallClock() time.Time {
	return time.Now()
}
