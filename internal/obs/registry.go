// Package obs is the stdlib-only observability subsystem: a metric
// registry (counters, gauges, fixed-bucket histograms) with deterministic
// Prometheus text exposition, an embeddable net/http server that serves
// /metrics, JSON series endpoints over the tsdb query API and
// health/readiness probes, and a self-metering layer that prices the
// monitor's own cost per estimation tick (the "what does the power meter
// itself cost?" question) as highrpm_overhead_* series.
//
// Exposition is golden-testable by construction: metric families are
// emitted in sorted name order and a family's series in sorted
// label-value order, so the same registry state always renders the same
// bytes. All registry operations are safe for concurrent use.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind discriminates the three instrument types.
type MetricKind int

// The instrument types.
const (
	// KindCounter is a monotonically increasing total.
	KindCounter MetricKind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onGather []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label-name set and one series
// per distinct label-value tuple.
type family struct {
	name    string
	help    string
	kind    MetricKind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	mu     sync.Mutex
	series map[string]*instrument // key: label values joined by \xff
}

// instrument is one series of a family: the shared value cell all three
// public instrument types wrap.
type instrument struct {
	labelValues []string

	bits atomic.Uint64 // counter/gauge value as float64 bits

	// Histogram state, guarded by hmu.
	hmu     sync.Mutex
	bcounts []uint64
	hsum    float64
	hcount  uint64
}

func (m *instrument) load() float64   { return math.Float64frombits(m.bits.Load()) }
func (m *instrument) store(v float64) { m.bits.Store(math.Float64bits(v)) }
func (m *instrument) addFloat(d float64) {
	for {
		old := m.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if m.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Counter is a monotonically increasing total. Set exists for mirroring
// an externally maintained cumulative counter (e.g. a Stats snapshot)
// into the exposition; it must never be used to decrease a live counter.
type Counter struct{ m *instrument }

// Inc adds one.
func (c Counter) Inc() { c.m.addFloat(1) }

// Add adds d (d must be ≥ 0 for a well-formed counter).
func (c Counter) Add(d float64) { c.m.addFloat(d) }

// Set overwrites the value — only for mirroring snapshot counters.
func (c Counter) Set(v float64) { c.m.store(v) }

// Value reads the current value.
func (c Counter) Value() float64 { return c.m.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ m *instrument }

// Set overwrites the value.
func (g Gauge) Set(v float64) { g.m.store(v) }

// Add adds d (negative to subtract).
func (g Gauge) Add(d float64) { g.m.addFloat(d) }

// Value reads the current value.
func (g Gauge) Value() float64 { return g.m.load() }

// Histogram is a fixed-bucket distribution; buckets are cumulative in the
// Prometheus style and a +Inf bucket is implicit.
type Histogram struct {
	m       *instrument
	buckets []float64
}

// Observe records one value.
func (h Histogram) Observe(v float64) {
	h.m.hmu.Lock()
	for i, ub := range h.buckets {
		if v <= ub {
			h.m.bcounts[i]++
		}
	}
	h.m.hsum += v
	h.m.hcount++
	h.m.hmu.Unlock()
}

// Count reads how many values were observed.
func (h Histogram) Count() uint64 {
	h.m.hmu.Lock()
	defer h.m.hmu.Unlock()
	return h.m.hcount
}

// Sum reads the sum of observed values.
func (h Histogram) Sum() float64 {
	h.m.hmu.Lock()
	defer h.m.hmu.Unlock()
	return h.m.hsum
}

// CounterVec / GaugeVec / HistogramVec address a family's series by label
// values.
type (
	// CounterVec is a counter family with labels.
	CounterVec struct{ f *family }
	// GaugeVec is a gauge family with labels.
	GaugeVec struct{ f *family }
	// HistogramVec is a histogram family with labels.
	HistogramVec struct{ f *family }
)

// With returns the counter for the given label values (created on first
// use). The number of values must match the registered label names.
func (v CounterVec) With(values ...string) Counter {
	return Counter{v.f.get(values)}
}

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) Gauge {
	return Gauge{v.f.get(values)}
}

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f.get(values), v.f.buckets}
}

const labelSep = "\xff"

func (f *family) get(values []string) *instrument {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.series[key]
	if m == nil {
		m = &instrument{labelValues: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			m.bcounts = make([]uint64, len(f.buckets))
		}
		f.series[key] = m
	}
	return m
}

// register creates or fetches a family, panicking on a redefinition with
// a different shape — that is a programming error, not a runtime state.
func (r *Registry) register(name, help string, kind MetricKind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind or label set", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different label names", name))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  map[string]*instrument{},
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.register(name, help, KindCounter, nil, nil).get(nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.register(name, help, KindGauge, nil, nil).get(nil)}
}

// Histogram registers (or fetches) an unlabeled fixed-bucket histogram.
// Buckets are upper bounds in ascending order; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	f := r.register(name, help, KindHistogram, nil, buckets)
	return Histogram{f.get(nil), f.buckets}
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// OnGather registers a callback run (in registration order) at the start
// of every exposition, before any family is rendered. Components use it
// to mirror a consistent stats snapshot into their gauges once per
// scrape instead of on every update.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	r.onGather = append(r.onGather, fn)
	r.mu.Unlock()
}

// snapshot returns the families sorted by name and the gather callbacks.
func (r *Registry) snapshot() ([]*family, []func()) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	//lint:ignore maporder collected then sorted immediately below
	for _, f := range r.families {
		fams = append(fams, f)
	}
	cbs := append([]func(){}, r.onGather...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams, cbs
}
