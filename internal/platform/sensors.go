package platform

import (
	"fmt"
	"math/rand"
)

// Reading is one sensor observation.
type Reading struct {
	Time  float64 // seconds; for IPMI this is when the reading became visible
	Power float64 // watts
}

// IPMISensor models the general integrated measurement path of §2.2 and
// §5.2: the BMC reads the power chip over IPMI, delivering node-level power
// at a low rate (≤ 0.1 Sa/s) with a read-out delay and quantisation.
type IPMISensor struct {
	// Interval is the seconds between readings (the paper's miss_interval;
	// 10 s ⇒ 0.1 Sa/s).
	Interval float64
	// Latency is the read-out delay before a reading becomes visible.
	Latency float64
	// Error is the gaussian sigma of the sensor (vendor tools: ~1 W).
	Error float64
	// Quantum rounds readings to this granularity (0 disables).
	Quantum float64
	// Jitter adds uniform ±Jitter seconds to each reading time, modelling
	// the network-congestion effect of §6.4.6 (0 disables).
	Jitter float64

	rng *rand.Rand
}

// NewIPMISensor returns the paper's default sensor: one reading every
// interval seconds, 0.5 s latency, 1 W error, 1 W quantisation.
func NewIPMISensor(interval float64, seed int64) *IPMISensor {
	return &IPMISensor{
		Interval: interval, Latency: 0.5, Error: 1.0, Quantum: 1.0,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Readings samples the trace's node power at the sensor cadence. The first
// reading is taken at t = 0.
func (s *IPMISensor) Readings(tr *Trace) []Reading {
	if s.Interval <= 0 {
		panic("platform: IPMISensor.Interval must be positive")
	}
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(1))
	}
	var out []Reading
	for t := 0.0; t < tr.Duration(); t += s.Interval {
		at := t
		if s.Jitter > 0 {
			at += (s.rng.Float64()*2 - 1) * s.Jitter
			if at < 0 {
				at = 0
			}
		}
		idx := int(at / tr.Dt)
		if idx >= len(tr.Samples) {
			break
		}
		p := tr.Samples[idx].PNode + s.rng.NormFloat64()*s.Error
		if s.Quantum > 0 {
			p = float64(int(p/s.Quantum+0.5)) * s.Quantum
		}
		out = append(out, Reading{Time: at + s.Latency, Power: p})
	}
	return out
}

// Rate returns the sensor sampling rate in samples per second.
func (s *IPMISensor) Rate() float64 { return 1 / s.Interval }

// String describes the sensor.
func (s *IPMISensor) String() string {
	return fmt.Sprintf("ipmi(%.2gSa/s, ±%.1fW)", s.Rate(), s.Error)
}

// DirectProbe models the paper's bench-measurement rig (§5.2): jumper wires
// on the voltage domains read through registers 0x8b/0x8c, giving CPU and
// memory power at 1 Sa/s with 0.1 W error. It supplies ground-truth labels
// for training and evaluation and is explicitly not deployable at scale.
type DirectProbe struct {
	// Error is the gaussian sigma in watts (paper: 0.1 W).
	Error float64
	rng   *rand.Rand
}

// NewDirectProbe returns a probe with the paper's 0.1 W error.
func NewDirectProbe(seed int64) *DirectProbe {
	return &DirectProbe{Error: 0.1, rng: rand.New(rand.NewSource(seed))}
}

// ComponentPower returns 1 Sa/s CPU and memory power observations.
func (p *DirectProbe) ComponentPower(tr *Trace) (pcpu, pmem []float64) {
	step := int(1 / tr.Dt)
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(tr.Samples); i += step {
		s := tr.Samples[i]
		pcpu = append(pcpu, s.PCPU+p.rng.NormFloat64()*p.Error)
		pmem = append(pmem, s.PMEM+p.rng.NormFloat64()*p.Error)
	}
	return pcpu, pmem
}

// RAPL models Intel's running-average-power-limit interface on the x86
// platform (§6.3): energy counters for the package and DRAM domains read at
// 1 Sa/s through perf (/power/energy-pkg/ and /power/energy-ram/). RAPL is
// accurate; the Table 9 experiment deliberately sparsifies its output to
// 0.1 Sa/s to create the restoration problem.
type RAPL struct {
	// Error is the gaussian sigma on derived power, watts.
	Error float64
	rng   *rand.Rand
}

// NewRAPL returns a RAPL reader.
func NewRAPL(seed int64) *RAPL {
	return &RAPL{Error: 0.3, rng: rand.New(rand.NewSource(seed))}
}

// EnergyCounters returns cumulative package and DRAM energy in joules at
// 1-second boundaries, as perf would report.
func (r *RAPL) EnergyCounters(tr *Trace) (pkg, ram []float64) {
	var ePkg, eRAM float64
	step := int(1 / tr.Dt)
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(tr.Samples); i++ {
		s := tr.Samples[i]
		ePkg += s.PCPU * tr.Dt
		eRAM += s.PMEM * tr.Dt
		if (i+1)%step == 0 {
			pkg = append(pkg, ePkg)
			ram = append(ram, eRAM)
		}
	}
	return pkg, ram
}

// Power differentiates the energy counters into 1 Sa/s power readings.
func (r *RAPL) Power(tr *Trace) (pkg, ram []float64) {
	ePkg, eRAM := r.EnergyCounters(tr)
	pkg = diffPower(ePkg, r.rng, r.Error)
	ram = diffPower(eRAM, r.rng, r.Error)
	return pkg, ram
}

func diffPower(energy []float64, rng *rand.Rand, sigma float64) []float64 {
	out := make([]float64, len(energy))
	prev := 0.0
	for i, e := range energy {
		out[i] = (e - prev) + rng.NormFloat64()*sigma
		prev = e
	}
	return out
}

// Sparsify keeps every k-th element of a 1 Sa/s series, simulating the
// §6.3 miss_interval on RAPL data. It returns the kept indices and values.
func Sparsify(series []float64, k int) (idx []int, vals []float64) {
	if k < 1 {
		k = 1
	}
	for i := 0; i < len(series); i += k {
		idx = append(idx, i)
		vals = append(vals, series[i])
	}
	return idx, vals
}
