// Package platform simulates the compute-node hardware the paper measures:
// the ARM multi-core node with BMC-attached power chip (§5.1–5.2) and the
// Tianhe-1A-like x86/RAPL cluster node (§6.3).
//
// The simulator is the substitution for real hardware documented in
// DESIGN.md: it produces ground-truth component power (P_CPU, P_MEM,
// P_Other), node power as their sum plus sensor noise, and the ten Table 2
// PMC events as noisy nonlinear functions of the same workload state. A
// thermal-leakage process adds power variation that is invisible to the
// counters, which is what limits PMC-only power models in practice.
package platform

import (
	"fmt"
	"math"
	"math/rand"

	"highrpm/internal/pmu"
	"highrpm/internal/workload"
)

// Config describes a node model.
type Config struct {
	Name  string
	Arch  string // "arm64" or "x86_64"
	Cores int
	// FreqLevels are the DVFS operating points in GHz, ascending.
	FreqLevels []float64
	// CPUIdle/CPUDyn: P_CPU = CPUIdle + CPUDyn·activity·(f/fmax)^Alpha + leakage.
	CPUIdle float64
	CPUDyn  float64
	// MemIdle/MemDyn: P_MEM = MemIdle + MemDyn·traffic.
	MemIdle float64
	MemDyn  float64
	// Other is the near-constant peripheral power (§5.2: 25 W ± <1 W).
	Other float64
	// Alpha is the dynamic-power frequency exponent.
	Alpha float64
	// PMCNoise is the multiplicative read-noise sigma on every counter.
	PMCNoise float64
	// NodeNoise/CompNoise are gaussian sigmas (W) on the node power process
	// and the component power processes.
	NodeNoise float64
	CompNoise float64
	// LeakGain scales the thermal-leakage power (W per Kelvin above ambient).
	LeakGain float64
	// WanderCPU and WanderMEM are the stationary standard deviations (W) of
	// the slow Ornstein–Uhlenbeck power wander on each component — voltage
	// regulation and temperature effects that power sensors see but PMCs do
	// not. The wander is what gives trend-following models (spline, TRR)
	// their edge over PMC-only models.
	WanderCPU float64
	WanderMEM float64
	// WanderTau is the wander time constant in seconds.
	WanderTau float64
}

// MaxFreq returns the highest DVFS level.
func (c Config) MaxFreq() float64 { return c.FreqLevels[len(c.FreqLevels)-1] }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("platform: %s: cores must be positive", c.Name)
	}
	if len(c.FreqLevels) == 0 {
		return fmt.Errorf("platform: %s: no frequency levels", c.Name)
	}
	for i := 1; i < len(c.FreqLevels); i++ {
		if c.FreqLevels[i] <= c.FreqLevels[i-1] {
			return fmt.Errorf("platform: %s: frequency levels must ascend", c.Name)
		}
	}
	if c.CPUDyn <= 0 || c.MemDyn <= 0 {
		return fmt.Errorf("platform: %s: dynamic power ranges must be positive", c.Name)
	}
	return nil
}

// ARMConfig models the paper's evaluation platform: a 64-core ARMv8 node
// with 128 GB DDR4 behind a BMC, DVFS levels 1.4/1.8/2.2 GHz (§5.1, §6.4.2).
func ARMConfig() Config {
	return Config{
		Name:       "arm64-node",
		Arch:       "arm64",
		Cores:      64,
		FreqLevels: []float64{1.4, 1.8, 2.2},
		CPUIdle:    12, CPUDyn: 55,
		MemIdle: 8, MemDyn: 35,
		Other: 25, Alpha: 2.2,
		PMCNoise: 0.12, NodeNoise: 0.8, CompNoise: 0.4,
		LeakGain:  0.35,
		WanderCPU: 6.5, WanderMEM: 1.0, WanderTau: 20,
	}
}

// X86Config models the §6.3 cluster node: dual Intel Xeon E5-2660 v2
// (2×10 cores, 2.6 GHz turbo ladder) with RAPL support. The higher clock and
// noise make modeling slightly harder, as the paper observes.
func X86Config() Config {
	return Config{
		Name:       "x86-node",
		Arch:       "x86_64",
		Cores:      20,
		FreqLevels: []float64{1.2, 1.7, 2.2, 2.6},
		CPUIdle:    28, CPUDyn: 110,
		MemIdle: 12, MemDyn: 48,
		Other: 30, Alpha: 2.0,
		PMCNoise: 0.10, NodeNoise: 1.2, CompNoise: 0.6,
		LeakGain:  0.45,
		WanderCPU: 5.0, WanderMEM: 1.8, WanderTau: 18,
	}
}

// Sample is one simulation step's full ground truth.
type Sample struct {
	Time     float64 // seconds since run start
	PCPU     float64 // watts
	PMEM     float64
	POther   float64
	PNode    float64
	Freq     float64 // GHz
	Counters pmu.Counters
	State    workload.State
}

// Trace is a completed run at fixed step dt.
type Trace struct {
	Benchmark string
	Config    Config
	Dt        float64
	Samples   []Sample
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Samples)) * t.Dt }

// NodePower returns the ground-truth node power series.
func (t *Trace) NodePower() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.PNode
	}
	return out
}

// CPUPower returns the ground-truth CPU power series.
func (t *Trace) CPUPower() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.PCPU
	}
	return out
}

// MemPower returns the ground-truth memory power series.
func (t *Trace) MemPower() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.PMEM
	}
	return out
}

// Times returns the sample timestamps.
func (t *Trace) Times() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.Time
	}
	return out
}

// Energy integrates node power over the trace, in joules.
func (t *Trace) Energy() float64 {
	var e float64
	for _, s := range t.Samples {
		e += s.PNode * t.Dt
	}
	return e
}

// PeakPower returns the maximum node power of the trace.
func (t *Trace) PeakPower() float64 {
	var p float64
	for _, s := range t.Samples {
		if s.PNode > p {
			p = s.PNode
		}
	}
	return p
}

// Node is a running node simulation. It is not safe for concurrent use; the
// cluster layer gives each node its own goroutine.
type Node struct {
	cfg  Config
	rng  *rand.Rand
	inst *workload.Instance
	t    float64
	freq float64

	// Thermal state for the leakage process (not PMC-visible).
	temp    float64 // Kelvin above ambient
	otherLP float64 // low-pass wander of peripheral power
	ouCPU   float64 // OU wander state, CPU domain
	ouMEM   float64 // OU wander state, memory domain
}

// NewNode creates a node with the given configuration and noise seed.
func NewNode(cfg Config, seed int64) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Node{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		freq: cfg.MaxFreq(),
	}, nil
}

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Attach starts a workload on the node, replacing any current one. The
// instance's noise stream derives from the node seed and benchmark name.
func (n *Node) Attach(b workload.Benchmark) {
	n.inst = workload.NewInstance(b, n.rng.Int63())
}

// Frequency returns the current DVFS level in GHz.
func (n *Node) Frequency() float64 { return n.freq }

// SetFrequency switches to the given DVFS level, which must be one of the
// configured operating points.
func (n *Node) SetFrequency(ghz float64) error {
	for _, f := range n.cfg.FreqLevels {
		//lint:ignore floateq DVFS operating points are exact configured constants, not computed values
		if f == ghz {
			n.freq = ghz
			return nil
		}
	}
	return fmt.Errorf("platform: %s: no DVFS level %.2f GHz (have %v)", n.cfg.Name, ghz, n.cfg.FreqLevels)
}

// StepFrequency moves one DVFS level up (dir > 0) or down (dir < 0),
// saturating at the ends, and returns the new level.
func (n *Node) StepFrequency(dir int) float64 {
	cur := 0
	for i, f := range n.cfg.FreqLevels {
		//lint:ignore floateq the current level is always assigned from the exact table entry
		if f == n.freq {
			cur = i
			break
		}
	}
	switch {
	case dir > 0 && cur < len(n.cfg.FreqLevels)-1:
		cur++
	case dir < 0 && cur > 0:
		cur--
	}
	n.freq = n.cfg.FreqLevels[cur]
	return n.freq
}

// Idle reports whether no workload is attached or it has finished.
func (n *Node) Idle() bool { return n.inst == nil || n.inst.Done() }

// Step advances the simulation by dt seconds and returns the ground truth
// for the interval.
func (n *Node) Step(dt float64) Sample {
	cfg := n.cfg
	fRel := n.freq / cfg.MaxFreq()
	var st workload.State
	if n.inst != nil && !n.inst.Done() {
		st = n.inst.Advance(dt, fRel)
	}
	// Activity blends raw utilisation with instruction throughput so that
	// two workloads with equal utilisation but different IPC draw different
	// power — the nonlinearity PMC models must learn.
	activity := 0.7*st.Util + 0.3*st.Util*math.Min(st.IPC, 3.2)/3.2

	// Thermal leakage: first-order RC toward a temperature proportional to
	// dynamic power; leakage power follows temperature. PMCs cannot see it.
	cpuScale := st.CPUPowerScale
	if cpuScale == 0 {
		cpuScale = 1
	}
	memScale := st.MemPowerScale
	if memScale == 0 {
		memScale = 1
	}
	dyn := cfg.CPUDyn * activity * cpuScale * math.Pow(fRel, cfg.Alpha)
	targetTemp := dyn * 0.45 // K above ambient at steady state
	tau := 25.0              // thermal time constant, seconds
	n.temp += (targetTemp - n.temp) * dt / tau
	leak := cfg.LeakGain * n.temp

	// Slow OU wander, the PMC-invisible power variation (see Config). The
	// stationary sigma scales with fRel³ — voltage rides with frequency and
	// regulation/di-dt noise grows roughly with V²·f — which is why the
	// paper finds higher frequencies harder to model (§6.4.2).
	wtau := cfg.WanderTau
	if wtau <= 0 {
		wtau = 20
	}
	wScale := fRel * fRel * fRel
	n.ouCPU += -n.ouCPU*dt/wtau + cfg.WanderCPU*wScale*math.Sqrt(2*dt/wtau)*n.rng.NormFloat64()
	n.ouMEM += -n.ouMEM*dt/wtau + cfg.WanderMEM*wScale*math.Sqrt(2*dt/wtau)*n.rng.NormFloat64()

	// The CPU and memory domains share a voltage rail and heatsink, so a
	// slice of the CPU-domain wander and leakage also appears in DRAM
	// power. This shared component is why P_Node correlates strongly with
	// P_MEM (§4.3) — observing the node total lets a model subtract the
	// shared drift, which PMCs alone cannot see.
	pcpu := cfg.CPUIdle + dyn + leak + n.ouCPU + n.rng.NormFloat64()*cfg.CompNoise
	pmem := cfg.MemIdle + cfg.MemDyn*st.Mem*memScale + n.ouMEM + 0.30*n.ouCPU + 0.08*leak +
		n.rng.NormFloat64()*cfg.CompNoise*0.6
	// Peripheral power wanders within ±~0.5 W (§5.2).
	n.otherLP += (n.rng.NormFloat64()*0.1 - n.otherLP*0.05) * dt
	if n.otherLP > 0.5 {
		n.otherLP = 0.5
	}
	if n.otherLP < -0.5 {
		n.otherLP = -0.5
	}
	pother := cfg.Other + n.otherLP
	if pcpu < cfg.CPUIdle*0.5 {
		pcpu = cfg.CPUIdle * 0.5
	}
	if pmem < cfg.MemIdle*0.5 {
		pmem = cfg.MemIdle * 0.5
	}
	pnode := pcpu + pmem + pother + n.rng.NormFloat64()*cfg.NodeNoise

	s := Sample{
		Time: n.t, PCPU: pcpu, PMEM: pmem, POther: pother, PNode: pnode,
		Freq: n.freq, State: st,
	}
	s.Counters = n.counters(st, fRel)
	n.t += dt
	return s
}

// counters produces the aggregated per-second PMC rates for the current
// state, with multiplicative read noise and occasional outliers (§1:
// "PMC readings can be noisy").
func (n *Node) counters(st workload.State, fRel float64) pmu.Counters {
	cfg := n.cfg
	noisy := func(v float64) float64 {
		v *= 1 + n.rng.NormFloat64()*cfg.PMCNoise
		if n.rng.Float64() < 0.01 { // rare read glitch
			v *= 1 + 0.5*n.rng.Float64()
		}
		if v < 0 {
			return 0
		}
		return v
	}
	freqHz := n.freq * 1e9
	activeCycles := float64(cfg.Cores) * st.Util * freqHz
	inst := activeCycles * st.IPC
	var c pmu.Counters
	c.Set(pmu.CPUCycles, noisy(activeCycles))
	c.Set(pmu.InstRetired, noisy(inst))
	c.Set(pmu.BrPred, noisy(inst*st.BranchFrac))
	c.Set(pmu.UopRetired, noisy(inst*1.35))
	c.Set(pmu.L1ICacheLD, noisy(inst*0.92))
	c.Set(pmu.L1ICacheST, noisy(inst*0.02))
	c.Set(pmu.LxDCacheLD, noisy(inst*(0.22+0.30*st.Mem)))
	c.Set(pmu.LxDCacheST, noisy(inst*(0.09+0.14*st.Mem)))
	// Memory-side counters track traffic, not core speed.
	busPeak := 4.0e9 * float64(cfg.Cores) / 64
	memPeak := 2.5e9 * float64(cfg.Cores) / 64
	_ = fRel
	c.Set(pmu.BusAccess, noisy(st.Mem*busPeak))
	c.Set(pmu.MemAccess, noisy(st.Mem*memPeak))
	return c
}

// Run attaches the benchmark and simulates until it completes or maxDur
// seconds elapse (whichever is first), sampling every dt seconds.
func (n *Node) Run(b workload.Benchmark, maxDur, dt float64) *Trace {
	if dt <= 0 {
		dt = 1
	}
	n.Attach(b)
	tr := &Trace{Benchmark: b.String(), Config: n.cfg, Dt: dt}
	start := n.t
	for n.t-start < maxDur && !n.Idle() {
		s := n.Step(dt)
		s.Time -= start
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

// RunFor simulates for exactly dur seconds, looping the benchmark if it
// finishes early; dataset generation uses this to collect fixed-length
// traces per program.
func (n *Node) RunFor(b workload.Benchmark, dur, dt float64) *Trace {
	if dt <= 0 {
		dt = 1
	}
	n.Attach(b)
	tr := &Trace{Benchmark: b.String(), Config: n.cfg, Dt: dt}
	start := n.t
	for n.t-start < dur {
		if n.Idle() {
			n.Attach(b) // loop the program
		}
		s := n.Step(dt)
		s.Time -= start
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}
