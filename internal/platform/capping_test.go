package platform

import (
	"testing"

	"highrpm/internal/workload"
)

func cappingBench(t *testing.T) workload.Benchmark {
	t.Helper()
	b := mustBench(t, "Graph500/bfs")
	b.Repeat = 10
	return b
}

func TestRunCappedValidation(t *testing.T) {
	n := mustNode(t, ARMConfig(), 1)
	b := cappingBench(t)
	if _, err := RunCapped(n, b, CappingConfig{CapWatts: 0, ReadInterval: 1, ActInterval: 1}); err == nil {
		t.Fatal("zero cap must fail")
	}
	if _, err := RunCapped(n, b, CappingConfig{CapWatts: 90, ReadInterval: 0, ActInterval: 1}); err == nil {
		t.Fatal("zero read interval must fail")
	}
	if _, err := RunCapped(n, b, CappingConfig{CapWatts: 90, ReadInterval: 1, ActInterval: 0}); err == nil {
		t.Fatal("zero act interval must fail")
	}
}

func TestCappingReducesPeakPower(t *testing.T) {
	b := cappingBench(t)
	free := mustNode(t, ARMConfig(), 2)
	uncapped := free.Run(b, 2000, 1)

	capped := mustNode(t, ARMConfig(), 2)
	res, err := RunCapped(capped, b, CappingConfig{CapWatts: 90, ReadInterval: 1, ActInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakW >= uncapped.PeakPower() {
		t.Fatalf("capping did not reduce peak: %g vs %g", res.PeakW, uncapped.PeakPower())
	}
	// Over-cap time must be a small fraction of the run with 1 s reactions.
	if res.OverCapSeconds > 0.35*res.CompletionSeconds {
		t.Fatalf("over-cap %g s of %g s — governor ineffective", res.OverCapSeconds, res.CompletionSeconds)
	}
}

func TestSlowerActionsRaisePeak(t *testing.T) {
	b := cappingBench(t)
	run := func(ai float64) *CappingResult {
		n := mustNode(t, ARMConfig(), 3)
		res, err := RunCapped(n, b, CappingConfig{CapWatts: 90, ReadInterval: 1, ActInterval: ai})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast, slow := run(1), run(30)
	if slow.PeakW <= fast.PeakW {
		t.Fatalf("AI=30 peak %g must exceed AI=1 peak %g (Fig. 1 shape)", slow.PeakW, fast.PeakW)
	}
	if slow.OverCapSeconds <= fast.OverCapSeconds {
		t.Fatalf("AI=30 over-cap %g must exceed AI=1 %g", slow.OverCapSeconds, fast.OverCapSeconds)
	}
}

func TestCappingExtendsRuntime(t *testing.T) {
	b := cappingBench(t)
	free := mustNode(t, ARMConfig(), 4)
	uncapped := free.Run(b, 4000, 1)

	n := mustNode(t, ARMConfig(), 4)
	res, err := RunCapped(n, b, CappingConfig{CapWatts: 80, ReadInterval: 1, ActInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionSeconds <= uncapped.Duration() {
		t.Fatalf("aggressive capping should slow the program: %g vs %g s",
			res.CompletionSeconds, uncapped.Duration())
	}
}

func TestCappingRecordsActionsAndReadings(t *testing.T) {
	b := cappingBench(t)
	n := mustNode(t, ARMConfig(), 5)
	res, err := RunCapped(n, b, CappingConfig{CapWatts: 90, ReadInterval: 10, ActInterval: 10, MaxDuration: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Readings) == 0 || len(res.Actions) == 0 {
		t.Fatal("no readings/actions recorded")
	}
	// ~200 s at one reading per 10 s.
	if len(res.Readings) < 15 || len(res.Readings) > 25 {
		t.Fatalf("%d readings over 200 s at PI=10", len(res.Readings))
	}
	for _, a := range res.Actions {
		if a.Freq < 1.4 || a.Freq > 2.2 {
			t.Fatalf("action frequency %g outside DVFS range", a.Freq)
		}
	}
}
