package platform

import (
	"fmt"

	"highrpm/internal/workload"
)

// CappingConfig drives the power-capping scenario of the paper's Fig. 1:
// a monitor refreshes its power reading every ReadInterval seconds (PI) and
// a governor enforces the cap every ActInterval seconds (AI) by stepping
// the DVFS level.
type CappingConfig struct {
	// CapWatts is the node power cap.
	CapWatts float64
	// ReadInterval (PI) is the seconds between power-reading refreshes.
	ReadInterval float64
	// ActInterval (AI) is the seconds between governor actions.
	ActInterval float64
	// Margin is the hysteresis band below the cap within which the
	// governor neither raises nor lowers frequency. The default, 30% of
	// the cap, is sized to the coarse DVFS ladder: one level down moves
	// CPU dynamic power by ~(f₁/f₀)^α ≈ 35%, so a narrower band makes the
	// governor oscillate between levels and defeats the cap.
	Margin float64
	// MaxDuration bounds the simulation in case capping stalls progress.
	MaxDuration float64
}

// CappingResult summarises a capped run.
type CappingResult struct {
	Trace *Trace
	// Readings are the monitor's power readings (time, value).
	Readings []Reading
	// Actions records each governor decision: time and new frequency.
	Actions []FreqAction
	// EnergyJ is total node energy to completion, joules.
	EnergyJ float64
	// PeakW is the maximum instantaneous node power.
	PeakW float64
	// OverCapSeconds is the time spent above the cap.
	OverCapSeconds float64
	// CompletionSeconds is the wall time to program completion.
	CompletionSeconds float64
}

// FreqAction is one governor decision.
type FreqAction struct {
	Time float64
	Freq float64
}

// RunCapped executes the benchmark under the capping policy. The causal
// loop is closed: stale readings (large PI) and slow actions (large AI) let
// power overshoot the cap, raising peak power and total energy exactly as
// Fig. 1 demonstrates.
func RunCapped(n *Node, b workload.Benchmark, cfg CappingConfig) (*CappingResult, error) {
	if cfg.CapWatts <= 0 {
		return nil, fmt.Errorf("platform: cap must be positive")
	}
	if cfg.ReadInterval <= 0 || cfg.ActInterval <= 0 {
		return nil, fmt.Errorf("platform: read/act intervals must be positive")
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.30 * cfg.CapWatts
	}
	if cfg.MaxDuration <= 0 {
		cfg.MaxDuration = 4 * b.TotalDuration()
		if cfg.MaxDuration < 600 {
			cfg.MaxDuration = 600
		}
	}
	dt := 1.0
	n.Attach(b)
	res := &CappingResult{Trace: &Trace{Benchmark: b.String(), Config: n.Config(), Dt: dt}}
	var (
		lastReading float64
		nextReadAt  float64
		nextActAt   float64
		start       = true
		elapsed     float64
	)
	for elapsed < cfg.MaxDuration && !n.Idle() {
		s := n.Step(dt)
		s.Time = elapsed
		res.Trace.Samples = append(res.Trace.Samples, s)
		res.EnergyJ += s.PNode * dt
		if s.PNode > res.PeakW {
			res.PeakW = s.PNode
		}
		if s.PNode > cfg.CapWatts {
			res.OverCapSeconds += dt
		}
		if start || elapsed >= nextReadAt {
			lastReading = s.PNode
			res.Readings = append(res.Readings, Reading{Time: elapsed, Power: lastReading})
			nextReadAt = elapsed + cfg.ReadInterval
		}
		if start || elapsed >= nextActAt {
			switch {
			case lastReading > cfg.CapWatts:
				n.StepFrequency(-1)
			case lastReading < cfg.CapWatts-cfg.Margin:
				n.StepFrequency(+1)
			}
			res.Actions = append(res.Actions, FreqAction{Time: elapsed, Freq: n.Frequency()})
			nextActAt = elapsed + cfg.ActInterval
		}
		start = false
		elapsed += dt
	}
	res.CompletionSeconds = elapsed
	return res, nil
}
