package platform

import (
	"math"
	"testing"
)

func traceFor(t *testing.T, dur float64, seed int64) *Trace {
	t.Helper()
	n := mustNode(t, ARMConfig(), seed)
	return n.RunFor(mustBench(t, "HPCC/FFT"), dur, 1)
}

func TestIPMIReadingCadence(t *testing.T) {
	tr := traceFor(t, 100, 1)
	s := NewIPMISensor(10, 2)
	rds := s.Readings(tr)
	if len(rds) != 10 {
		t.Fatalf("100 s at 0.1 Sa/s must give 10 readings, got %d", len(rds))
	}
	// Readings become visible after the read-out latency.
	if rds[0].Time != s.Latency {
		t.Fatalf("first reading at %g want %g", rds[0].Time, s.Latency)
	}
	for i := 1; i < len(rds); i++ {
		if gap := rds[i].Time - rds[i-1].Time; math.Abs(gap-10) > 1e-9 {
			t.Fatalf("reading gap = %g want 10", gap)
		}
	}
}

func TestIPMIReadingAccuracy(t *testing.T) {
	tr := traceFor(t, 300, 3)
	s := NewIPMISensor(10, 4)
	var sumErr float64
	rds := s.Readings(tr)
	for i, r := range rds {
		truth := tr.Samples[i*10].PNode
		sumErr += math.Abs(r.Power - truth)
	}
	avg := sumErr / float64(len(rds))
	// 1 W gaussian + 1 W quantisation: mean abs error well under 3 W.
	if avg > 3 {
		t.Fatalf("mean IPMI error %g W too high", avg)
	}
	if avg == 0 {
		t.Fatal("IPMI must not be a perfect sensor")
	}
}

func TestIPMIQuantisation(t *testing.T) {
	tr := traceFor(t, 50, 5)
	s := NewIPMISensor(10, 6)
	for _, r := range s.Readings(tr) {
		if r.Power != math.Trunc(r.Power) {
			t.Fatalf("reading %g not quantised to 1 W", r.Power)
		}
	}
}

func TestIPMIJitterShiftsTimes(t *testing.T) {
	tr := traceFor(t, 200, 7)
	s := NewIPMISensor(10, 8)
	s.Jitter = 3
	var jittered bool
	for _, r := range s.Readings(tr) {
		off := math.Mod(r.Time-s.Latency, 10)
		if off > 1e-9 && off < 10-1e-9 {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("jittered sensor produced perfectly periodic readings")
	}
}

func TestIPMIRateAndString(t *testing.T) {
	s := NewIPMISensor(10, 1)
	if s.Rate() != 0.1 {
		t.Fatalf("Rate = %g want 0.1", s.Rate())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDirectProbeAccuracy(t *testing.T) {
	tr := traceFor(t, 200, 9)
	p := NewDirectProbe(10)
	pcpu, pmem := p.ComponentPower(tr)
	if len(pcpu) != 200 || len(pmem) != 200 {
		t.Fatalf("probe lengths %d/%d want 200", len(pcpu), len(pmem))
	}
	var maxErr float64
	for i := range pcpu {
		if e := math.Abs(pcpu[i] - tr.Samples[i].PCPU); e > maxErr {
			maxErr = e
		}
	}
	// 0.1 W gaussian: max error over 200 samples stays below ~0.5 W.
	if maxErr > 0.6 {
		t.Fatalf("direct probe max error %g W, paper says 0.1 W class", maxErr)
	}
}

func TestRAPLEnergyMonotone(t *testing.T) {
	n := mustNode(t, X86Config(), 11)
	tr := n.RunFor(mustBench(t, "HPCG/hpcg"), 120, 1)
	r := NewRAPL(12)
	pkg, ram := r.EnergyCounters(tr)
	if len(pkg) != 120 {
		t.Fatalf("pkg energy has %d entries", len(pkg))
	}
	for i := 1; i < len(pkg); i++ {
		if pkg[i] <= pkg[i-1] || ram[i] <= ram[i-1] {
			t.Fatal("energy counters must be strictly increasing under load")
		}
	}
}

func TestRAPLPowerMatchesGroundTruth(t *testing.T) {
	n := mustNode(t, X86Config(), 13)
	tr := n.RunFor(mustBench(t, "HPCC/DGEMM"), 150, 1)
	r := NewRAPL(14)
	pkg, _ := r.Power(tr)
	var sumErr float64
	for i := range pkg {
		sumErr += math.Abs(pkg[i] - tr.Samples[i].PCPU)
	}
	if avg := sumErr / float64(len(pkg)); avg > 1.5 {
		t.Fatalf("RAPL mean error %g W too high", avg)
	}
}

func TestSparsify(t *testing.T) {
	series := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	idx, vals := Sparsify(series, 5)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 5 || idx[2] != 10 {
		t.Fatalf("Sparsify idx = %v", idx)
	}
	if vals[1] != 5 {
		t.Fatalf("Sparsify vals = %v", vals)
	}
	idx, _ = Sparsify(series, 0) // clamps to 1
	if len(idx) != len(series) {
		t.Fatal("k=0 must keep everything")
	}
}
