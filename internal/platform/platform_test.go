package platform

import (
	"math"
	"testing"
	"testing/quick"

	"highrpm/internal/pmu"
	"highrpm/internal/workload"
)

func mustNode(t *testing.T, cfg Config, seed int64) *Node {
	t.Helper()
	n, err := NewNode(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustBench(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	b, err := workload.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	good := ARMConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Fatal("zero cores must fail")
	}
	bad = good
	bad.FreqLevels = nil
	if bad.Validate() == nil {
		t.Fatal("no freq levels must fail")
	}
	bad = good
	bad.FreqLevels = []float64{2.2, 1.4}
	if bad.Validate() == nil {
		t.Fatal("descending freq levels must fail")
	}
	bad = good
	bad.CPUDyn = 0
	if bad.Validate() == nil {
		t.Fatal("zero dynamic range must fail")
	}
}

func TestBothPlatformConfigsValid(t *testing.T) {
	for _, cfg := range []Config{ARMConfig(), X86Config()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

func TestNodePowerIsSumOfComponents(t *testing.T) {
	n := mustNode(t, ARMConfig(), 1)
	n.Attach(mustBench(t, "HPCC/FFT"))
	for i := 0; i < 100; i++ {
		s := n.Step(1)
		sum := s.PCPU + s.PMEM + s.POther
		if math.Abs(s.PNode-sum) > 5*ARMConfig().NodeNoise {
			t.Fatalf("PNode %g too far from component sum %g", s.PNode, sum)
		}
	}
}

func TestPowerPlausibleBounds(t *testing.T) {
	cfg := ARMConfig()
	n := mustNode(t, cfg, 2)
	n.Attach(mustBench(t, "Graph500/bfs"))
	for i := 0; i < 200; i++ {
		s := n.Step(1)
		if s.PCPU < 0 || s.PCPU > 200 {
			t.Fatalf("PCPU = %g out of plausible range", s.PCPU)
		}
		if s.PMEM < 0 || s.PMEM > 100 {
			t.Fatalf("PMEM = %g out of plausible range", s.PMEM)
		}
		if math.Abs(s.POther-cfg.Other) > 1 {
			t.Fatalf("POther = %g, paper says 25 W ± <1 W", s.POther)
		}
	}
}

func TestCountersNonNegative(t *testing.T) {
	n := mustNode(t, X86Config(), 3)
	n.Attach(mustBench(t, "HPCC/STREAM"))
	for i := 0; i < 100; i++ {
		s := n.Step(1)
		for e := 0; e < pmu.NumEvents; e++ {
			if s.Counters[e] < 0 {
				t.Fatalf("counter %s negative", pmu.Event(e))
			}
		}
	}
}

func TestDVFSReducesPower(t *testing.T) {
	cfg := ARMConfig()
	run := func(freq float64) float64 {
		n := mustNode(t, cfg, 4)
		if err := n.SetFrequency(freq); err != nil {
			t.Fatal(err)
		}
		n.Attach(mustBench(t, "HPL-AI/hpl-ai"))
		var sum float64
		for i := 0; i < 120; i++ {
			sum += n.Step(1).PCPU
		}
		return sum / 120
	}
	low, high := run(1.4), run(2.2)
	if low >= high {
		t.Fatalf("CPU power at 1.4 GHz (%g) must be below 2.2 GHz (%g)", low, high)
	}
	// The α≈2.2 exponent means the drop is super-linear.
	if high/low < 1.5 {
		t.Fatalf("frequency scaling too weak: %g vs %g", low, high)
	}
}

func TestSetFrequencyRejectsUnknownLevel(t *testing.T) {
	n := mustNode(t, ARMConfig(), 5)
	if err := n.SetFrequency(3.0); err == nil {
		t.Fatal("expected error for unknown DVFS level")
	}
}

func TestStepFrequencySaturates(t *testing.T) {
	n := mustNode(t, ARMConfig(), 6)
	for i := 0; i < 10; i++ {
		n.StepFrequency(-1)
	}
	if n.Frequency() != 1.4 {
		t.Fatalf("freq = %g want 1.4 (floor)", n.Frequency())
	}
	for i := 0; i < 10; i++ {
		n.StepFrequency(+1)
	}
	if n.Frequency() != 2.2 {
		t.Fatalf("freq = %g want 2.2 (ceiling)", n.Frequency())
	}
}

func TestRunForExactDuration(t *testing.T) {
	n := mustNode(t, ARMConfig(), 7)
	tr := n.RunFor(mustBench(t, "HPCC/DGEMM"), 123, 1)
	if len(tr.Samples) != 123 {
		t.Fatalf("RunFor produced %d samples want 123", len(tr.Samples))
	}
}

func TestRunStopsWhenDone(t *testing.T) {
	b := workload.Benchmark{
		Name: "short", Suite: "t",
		Phases: []workload.Phase{{Duration: 30, Util: 0.5, IPC: 1, Mem: 0.2}},
		Repeat: 1,
	}
	n := mustNode(t, ARMConfig(), 8)
	tr := n.Run(b, 1000, 1)
	if len(tr.Samples) < 28 || len(tr.Samples) > 35 {
		t.Fatalf("30 s program ran for %d samples", len(tr.Samples))
	}
}

func TestTraceHelpers(t *testing.T) {
	n := mustNode(t, ARMConfig(), 9)
	tr := n.RunFor(mustBench(t, "HPCC/FFT"), 50, 1)
	if tr.Duration() != 50 {
		t.Fatalf("Duration = %g", tr.Duration())
	}
	if len(tr.NodePower()) != 50 || len(tr.CPUPower()) != 50 || len(tr.MemPower()) != 50 || len(tr.Times()) != 50 {
		t.Fatal("series lengths wrong")
	}
	if tr.Energy() <= 0 || tr.PeakPower() <= 0 {
		t.Fatal("energy/peak must be positive")
	}
	if tr.PeakPower()*tr.Duration() < tr.Energy() {
		t.Fatal("peak·duration must bound energy")
	}
}

// Property: simulation is deterministic per (config, seed, benchmark).
func TestSimulationDeterministicProperty(t *testing.T) {
	benches := workload.Suite()
	f := func(seed int64, pick uint8) bool {
		b := benches[int(pick)%len(benches)]
		n1 := must(NewNode(ARMConfig(), seed))
		n2 := must(NewNode(ARMConfig(), seed))
		t1 := n1.RunFor(b, 30, 1)
		t2 := n2.RunFor(b, 30, 1)
		for i := range t1.Samples {
			if t1.Samples[i].PNode != t2.Samples[i].PNode {
				return false
			}
			if t1.Samples[i].Counters != t2.Samples[i].Counters {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func must(n *Node, err error) *Node {
	if err != nil {
		panic(err)
	}
	return n
}

func TestIdleNodePower(t *testing.T) {
	cfg := ARMConfig()
	n := mustNode(t, cfg, 10)
	// No workload attached: node draws idle + other only.
	var sum float64
	for i := 0; i < 60; i++ {
		sum += n.Step(1).PNode
	}
	avg := sum / 60
	idle := cfg.CPUIdle + cfg.MemIdle + cfg.Other
	if math.Abs(avg-idle) > 8 {
		t.Fatalf("idle node power %g want ~%g", avg, idle)
	}
}
