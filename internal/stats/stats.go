// Package stats implements the error metrics the paper reports for every
// model comparison — MAPE, RMSE, MAE and the coefficient of determination R²
// (§5.5) — plus small online summary helpers used by the monitoring service.
package stats

import (
	"fmt"
	"math"
)

// Metrics bundles the four accuracy metrics used throughout the evaluation.
type Metrics struct {
	MAPE float64 // mean absolute percentage error, in percent
	RMSE float64 // root mean squared error, in the unit of the target (W)
	MAE  float64 // mean absolute error, in the unit of the target (W)
	R2   float64 // coefficient of determination
	N    int     // number of scored points
}

// String renders the metrics the way the paper's tables do.
func (m Metrics) String() string {
	return fmt.Sprintf("MAPE=%.2f%% RMSE=%.2f MAE=%.2f R2=%.3f (n=%d)", m.MAPE, m.RMSE, m.MAE, m.R2, m.N)
}

// Evaluate scores predictions against observations. Pairs where the
// observation is zero are excluded from MAPE (division by zero) but included
// in the other metrics, matching common practice.
func Evaluate(observed, predicted []float64) Metrics {
	if len(observed) != len(predicted) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(observed), len(predicted)))
	}
	if len(observed) == 0 {
		return Metrics{}
	}
	var (
		sumAPE  float64
		nAPE    int
		sumSq   float64
		sumAbs  float64
		sumObs  float64
		present int
	)
	for i, o := range observed {
		p := predicted[i]
		if math.IsNaN(o) || math.IsNaN(p) {
			continue
		}
		present++
		d := p - o
		sumSq += d * d
		sumAbs += math.Abs(d)
		sumObs += o
		if o != 0 {
			sumAPE += math.Abs(d / o)
			nAPE++
		}
	}
	if present == 0 {
		return Metrics{}
	}
	m := Metrics{
		RMSE: math.Sqrt(sumSq / float64(present)),
		MAE:  sumAbs / float64(present),
		N:    present,
	}
	if nAPE > 0 {
		m.MAPE = 100 * sumAPE / float64(nAPE)
	}
	// R² = 1 − SS_res/SS_tot.
	mean := sumObs / float64(present)
	var ssTot float64
	for i, o := range observed {
		if math.IsNaN(o) || math.IsNaN(predicted[i]) {
			continue
		}
		d := o - mean
		ssTot += d * d
	}
	if ssTot > 0 {
		m.R2 = 1 - sumSq/ssTot
	}
	return m
}

// MAPE is a convenience wrapper returning only the MAPE of Evaluate.
func MAPE(observed, predicted []float64) float64 { return Evaluate(observed, predicted).MAPE }

// RMSE is a convenience wrapper returning only the RMSE of Evaluate.
func RMSE(observed, predicted []float64) float64 { return Evaluate(observed, predicted).RMSE }

// MAE is a convenience wrapper returning only the MAE of Evaluate.
func MAE(observed, predicted []float64) float64 { return Evaluate(observed, predicted).MAE }

// Average returns the element-wise mean of several Metrics, used to report
// the mean over the seven Table 3 train/test combinations.
func Average(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var out Metrics
	for _, m := range ms {
		out.MAPE += m.MAPE
		out.RMSE += m.RMSE
		out.MAE += m.MAE
		out.R2 += m.R2
		out.N += m.N
	}
	k := float64(len(ms))
	out.MAPE /= k
	out.RMSE /= k
	out.MAE /= k
	out.R2 /= k
	return out
}

// Running accumulates streaming mean/min/max/variance (Welford) for the
// monitoring service's per-sensor summaries.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Push adds an observation.
func (r *Running) Push(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations pushed.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observation (0 if none).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if none).
func (r *Running) Max() float64 { return r.max }

// M2 returns the running sum of squared deviations (the Welford
// accumulator), exposed so a Running can be persisted and restored
// bit-exactly.
func (r *Running) M2() float64 { return r.m2 }

// RestoreRunning rebuilds a Running from persisted state. Feeding back the
// exact values returned by N/Mean/M2/Min/Max yields a summary that is
// bit-identical to the original — the tsdb snapshot format depends on this
// to round-trip open rollup buckets.
func RestoreRunning(n int, mean, m2, min, max float64) Running {
	return Running{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Std returns the running population standard deviation.
func (r *Running) Std() float64 {
	if r.n == 0 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of v using linear
// interpolation between order statistics. v is not modified.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(v))
	copy(s, v)
	insertionSort(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

func insertionSort(v []float64) {
	// Quantile inputs in this repo are short windows; a branch-light
	// insertion sort beats sort.Float64s allocation-wise at these sizes.
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}
