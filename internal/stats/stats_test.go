package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvaluatePerfect(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	m := Evaluate(obs, obs)
	if m.MAPE != 0 || m.RMSE != 0 || m.MAE != 0 {
		t.Fatalf("perfect prediction gave %v", m)
	}
	if m.R2 != 1 {
		t.Fatalf("perfect prediction R2 = %g want 1", m.R2)
	}
	if m.N != 4 {
		t.Fatalf("N = %d want 4", m.N)
	}
}

func TestEvaluateKnown(t *testing.T) {
	obs := []float64{100, 100}
	pred := []float64{110, 90}
	m := Evaluate(obs, pred)
	if math.Abs(m.MAPE-10) > 1e-12 {
		t.Fatalf("MAPE = %g want 10", m.MAPE)
	}
	if math.Abs(m.RMSE-10) > 1e-12 {
		t.Fatalf("RMSE = %g want 10", m.RMSE)
	}
	if math.Abs(m.MAE-10) > 1e-12 {
		t.Fatalf("MAE = %g want 10", m.MAE)
	}
}

func TestEvaluateZeroObservationsExcludedFromMAPE(t *testing.T) {
	m := Evaluate([]float64{0, 100}, []float64{5, 110})
	if math.Abs(m.MAPE-10) > 1e-12 {
		t.Fatalf("MAPE = %g want 10 (zero obs excluded)", m.MAPE)
	}
	if m.N != 2 {
		t.Fatalf("N = %d want 2 (zero obs still counted in MAE/RMSE)", m.N)
	}
}

func TestEvaluateNaNSkipped(t *testing.T) {
	m := Evaluate([]float64{math.NaN(), 100}, []float64{1, 100})
	if m.N != 1 {
		t.Fatalf("N = %d want 1", m.N)
	}
}

func TestEvaluateLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate([]float64{1}, []float64{1, 2})
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(nil, nil)
	if m.N != 0 {
		t.Fatalf("empty eval N = %d", m.N)
	}
}

// Property: RMSE ≥ MAE always (Cauchy–Schwarz), and both are ≥ 0.
func TestRMSEGreaterEqualMAE(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		obs := make([]float64, n)
		pred := make([]float64, n)
		for i := range obs {
			obs[i] = rng.NormFloat64()*10 + 50
			pred[i] = rng.NormFloat64()*10 + 50
		}
		m := Evaluate(obs, pred)
		return m.RMSE >= m.MAE-1e-12 && m.MAE >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAverage(t *testing.T) {
	avg := Average([]Metrics{
		{MAPE: 10, RMSE: 2, MAE: 1, R2: 0.8, N: 5},
		{MAPE: 20, RMSE: 4, MAE: 3, R2: 0.6, N: 7},
	})
	if avg.MAPE != 15 || avg.RMSE != 3 || avg.MAE != 2 {
		t.Fatalf("Average = %+v", avg)
	}
	if math.Abs(avg.R2-0.7) > 1e-12 {
		t.Fatalf("avg R2 = %g", avg.R2)
	}
	if avg.N != 12 {
		t.Fatalf("avg N = %d want 12 (summed)", avg.N)
	}
	if (Average(nil) != Metrics{}) {
		t.Fatal("Average(nil) must be zero")
	}
}

// Property: Running matches direct mean/min/max/std computation.
func TestRunningMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		var r Running
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			r.Push(vals[i])
		}
		var sum float64
		mn, mx := vals[0], vals[0]
		for _, v := range vals {
			sum += v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mean := sum / float64(n)
		var sq float64
		for _, v := range vals {
			sq += (v - mean) * (v - mean)
		}
		std := math.Sqrt(sq / float64(n))
		return r.N() == n &&
			math.Abs(r.Mean()-mean) < 1e-9 &&
			r.Min() == mn && r.Max() == mx &&
			math.Abs(r.Std()-std) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{3, 1, 2, 5, 4}
	if Quantile(v, 0) != 1 || Quantile(v, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(v, 0.5); got != 3 {
		t.Fatalf("median = %g want 3", got)
	}
	if got := Quantile(v, 0.25); got != 2 {
		t.Fatalf("q25 = %g want 2", got)
	}
	// Input must not be modified.
	if v[0] != 3 {
		t.Fatal("Quantile modified its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestMetricsString(t *testing.T) {
	s := Metrics{MAPE: 4.46, RMSE: 3.19, MAE: 2.78, R2: 0.91, N: 100}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
