// Package governor implements power-capping control policies on top of
// HighRPM's restored readings. The paper's Fig. 1 shows why governors fail
// on raw integrated measurement — readings arrive tens of seconds apart —
// and HighRPM's per-second estimates are exactly the missing input. This
// package turns that observation into a small control library: a policy
// interface, three policies (hysteresis step, PID, trend-predictive), and
// a closed-loop runner against the platform simulator.
package governor

import (
	"fmt"

	"highrpm/internal/core"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

// Decision is a DVFS action: lower one level, hold, or raise one level.
type Decision int

// Decisions.
const (
	Lower Decision = -1
	Hold  Decision = 0
	Raise Decision = +1
)

// Policy decides a DVFS step from the current power estimate. Policies may
// keep internal state; one Policy instance governs one node.
type Policy interface {
	// Act returns the action for this second given the latest power
	// estimate (watts) and the cap.
	Act(estimate, cap float64) Decision
	// Name identifies the policy in reports.
	Name() string
	// Reset clears internal state for a fresh run.
	Reset()
}

// Hysteresis is the classic step governor: lower above the cap, raise only
// below cap−margin. It is what platform.RunCapped implements inline; here
// it is reusable and comparable.
type Hysteresis struct {
	// MarginFrac is the hysteresis band as a fraction of the cap
	// (default 0.30, sized to the coarse DVFS ladder).
	MarginFrac float64
}

// Name implements Policy.
func (h *Hysteresis) Name() string { return "hysteresis" }

// Reset implements Policy.
func (h *Hysteresis) Reset() {}

// Act implements Policy.
func (h *Hysteresis) Act(estimate, cap float64) Decision {
	m := h.MarginFrac
	if m <= 0 {
		m = 0.30
	}
	switch {
	case estimate > cap:
		return Lower
	case estimate < cap-m*cap:
		return Raise
	default:
		return Hold
	}
}

// PID is a discrete PID controller whose output is quantised to DVFS
// steps. The integral term lets it sit close to the cap without the wide
// hysteresis band; the derivative term reacts to spikes as they rise.
type PID struct {
	// Kp, Ki, Kd are the controller gains on the normalised error
	// (cap − estimate)/cap. Zero values take tuned defaults.
	Kp, Ki, Kd float64
	// Deadband is the normalised |error| below which the controller holds
	// (default 0.04).
	Deadband float64

	integral float64
	prevErr  float64
	havePrev bool
}

// Name implements Policy.
func (p *PID) Name() string { return "pid" }

// Reset implements Policy.
func (p *PID) Reset() {
	p.integral, p.prevErr, p.havePrev = 0, 0, false
}

// Act implements Policy. The cap is treated as a hard constraint: any
// over-cap estimate lowers immediately; the PID terms only govern how
// eagerly headroom is converted back into frequency.
func (p *PID) Act(estimate, cap float64) Decision {
	kp, ki, kd := p.Kp, p.Ki, p.Kd
	if kp == 0 && ki == 0 && kd == 0 {
		kp, ki, kd = 1.0, 0.05, 0.5
	}
	dead := p.Deadband
	if dead <= 0 {
		dead = 0.04
	}
	err := (cap - estimate) / cap // positive: headroom, negative: over cap
	p.integral += err
	// Anti-windup: the integral cannot usefully exceed a few steps.
	if p.integral > 3 {
		p.integral = 3
	}
	if p.integral < -3 {
		p.integral = -3
	}
	var deriv float64
	if p.havePrev {
		deriv = err - p.prevErr
	}
	p.prevErr, p.havePrev = err, true
	if err < 0 {
		return Lower
	}
	u := kp*err + ki*p.integral + kd*deriv
	// Raising needs clear, sustained headroom: a step up moves CPU dynamic
	// power by ~(f₁/f₀)^α ≈ 35%, so require commensurate margin.
	if u > 0.25+dead {
		return Raise
	}
	return Hold
}

// Predictive acts on a short linear forecast of the estimate stream: if
// power *will* cross the cap within Horizon seconds at the current slope,
// it lowers pre-emptively. It wraps another policy for the steady state.
type Predictive struct {
	// Horizon is the look-ahead in seconds (default 3).
	Horizon float64
	// Base handles the non-preemptive decisions (default Hysteresis).
	Base Policy

	prev     float64
	havePrev bool
}

// NewPredictive returns a predictive policy over a hysteresis base.
func NewPredictive(horizon float64) *Predictive {
	return &Predictive{Horizon: horizon, Base: &Hysteresis{}}
}

// Name implements Policy.
func (p *Predictive) Name() string { return "predictive" }

// Reset implements Policy.
func (p *Predictive) Reset() {
	p.prev, p.havePrev = 0, false
	if p.Base != nil {
		p.Base.Reset()
	}
}

// Act implements Policy.
func (p *Predictive) Act(estimate, cap float64) Decision {
	h := p.Horizon
	if h <= 0 {
		h = 3
	}
	if p.Base == nil {
		p.Base = &Hysteresis{}
	}
	var slope float64
	if p.havePrev {
		slope = estimate - p.prev
	}
	p.prev, p.havePrev = estimate, true
	if estimate+slope*h > cap && slope > 0 {
		return Lower
	}
	return p.Base.Act(estimate, cap)
}

// Source supplies the governor's power estimate each second.
type Source interface {
	// Estimate consumes this second's telemetry and returns the governor's
	// power view. measured is the IM reading when one arrived (nil
	// otherwise).
	Estimate(pmc []float64, measured *float64) (float64, error)
	Name() string
}

// RawIM is the baseline source: the estimate only changes when an IM
// reading arrives (Fig. 1's stale-reading regime).
type RawIM struct {
	last float64
	seen bool
}

// Name implements Source.
func (r *RawIM) Name() string { return "raw-im" }

// Estimate implements Source.
func (r *RawIM) Estimate(_ []float64, measured *float64) (float64, error) {
	if measured != nil {
		r.last = *measured
		r.seen = true
	}
	if !r.seen {
		return 0, nil
	}
	return r.last, nil
}

// ModelSource feeds the governor HighRPM's per-second restored power.
type ModelSource struct {
	mon *core.Monitor
}

// NewModelSource wraps a trained model.
func NewModelSource(m *core.HighRPM) *ModelSource {
	return &ModelSource{mon: core.NewMonitor(m)}
}

// Name implements Source.
func (s *ModelSource) Name() string { return "highrpm" }

// Estimate implements Source.
func (s *ModelSource) Estimate(pmc []float64, measured *float64) (float64, error) {
	est, err := s.mon.Push(pmc, measured)
	if err != nil {
		return 0, err
	}
	return est.PNode, nil
}

// Config drives a governed run.
type Config struct {
	CapWatts float64
	// MissInterval is the IM reading gap in seconds.
	MissInterval int
	// MaxDuration bounds the run (default 4× nominal program length).
	MaxDuration float64
}

// Outcome summarises a governed run.
type Outcome struct {
	Policy, Source    string
	PeakW             float64
	EnergyJ           float64
	OverCapSeconds    float64
	CompletionSeconds float64
	// MeanFreqGHz indicates how much performance the policy preserved.
	MeanFreqGHz float64
}

// Run executes the benchmark on the node under the policy and source,
// acting once per second.
func Run(node *platform.Node, b workload.Benchmark, src Source, pol Policy, cfg Config) (Outcome, error) {
	if cfg.CapWatts <= 0 {
		return Outcome{}, fmt.Errorf("governor: cap must be positive")
	}
	if cfg.MissInterval <= 0 {
		cfg.MissInterval = 10
	}
	if cfg.MaxDuration <= 0 {
		cfg.MaxDuration = 4 * b.TotalDuration()
		if cfg.MaxDuration < 600 {
			cfg.MaxDuration = 600
		}
	}
	pol.Reset()
	node.Attach(b)
	out := Outcome{Policy: pol.Name(), Source: src.Name()}
	var freqSum float64
	t := 0
	for !node.Idle() && float64(t) < cfg.MaxDuration {
		s := node.Step(1)
		out.EnergyJ += s.PNode
		if s.PNode > out.PeakW {
			out.PeakW = s.PNode
		}
		if s.PNode > cfg.CapWatts {
			out.OverCapSeconds++
		}
		freqSum += s.Freq
		var measured *float64
		if t%cfg.MissInterval == 0 {
			v := s.PNode
			measured = &v
		}
		est, err := src.Estimate(s.Counters.Slice(), measured)
		if err != nil {
			return Outcome{}, err
		}
		switch pol.Act(est, cfg.CapWatts) {
		case Lower:
			node.StepFrequency(-1)
		case Raise:
			node.StepFrequency(+1)
		}
		t++
	}
	out.CompletionSeconds = float64(t)
	if t > 0 {
		out.MeanFreqGHz = freqSum / float64(t)
	}
	return out, nil
}
