package governor

import (
	"sync"
	"testing"

	"highrpm/internal/core"
	"highrpm/internal/dataset"
	"highrpm/internal/platform"
	"highrpm/internal/workload"
)

func TestHysteresisDecisions(t *testing.T) {
	h := &Hysteresis{MarginFrac: 0.2}
	if h.Act(101, 100) != Lower {
		t.Fatal("over cap must lower")
	}
	if h.Act(70, 100) != Raise {
		t.Fatal("well below must raise")
	}
	if h.Act(90, 100) != Hold {
		t.Fatal("inside band must hold")
	}
}

func TestPIDPullsTowardCap(t *testing.T) {
	p := &PID{}
	p.Reset()
	// Persistently over the cap: must keep lowering.
	for i := 0; i < 5; i++ {
		if p.Act(120, 100) != Lower {
			t.Fatalf("step %d: over-cap must lower", i)
		}
	}
	p.Reset()
	// Persistently far below: integral accumulates and raises.
	raised := false
	for i := 0; i < 5; i++ {
		if p.Act(60, 100) == Raise {
			raised = true
		}
	}
	if !raised {
		t.Fatal("sustained headroom must eventually raise")
	}
}

func TestPIDAntiWindup(t *testing.T) {
	p := &PID{}
	p.Reset()
	for i := 0; i < 1000; i++ {
		p.Act(50, 100)
	}
	// After long saturation, one strongly-over-cap second must flip the
	// decision quickly (within a few steps), not after unwinding 1000
	// integrations.
	for i := 0; i < 25; i++ {
		if p.Act(140, 100) == Lower {
			return
		}
	}
	t.Fatal("integral windup: controller cannot react to an over-cap burst")
}

func TestPredictivePreempts(t *testing.T) {
	p := NewPredictive(3)
	p.Reset()
	// Rising fast toward the cap but still below it: must lower now.
	p.Act(80, 100)
	if got := p.Act(92, 100); got != Lower {
		t.Fatalf("rising at 12 W/s toward a 100 W cap must preempt, got %v", got)
	}
	// Flat well below the cap: defers to the base policy (raise).
	p.Reset()
	p.Act(60, 100)
	if got := p.Act(60, 100); got != Raise {
		t.Fatalf("flat with headroom should raise, got %v", got)
	}
}

func TestRawIMHoldsLastReading(t *testing.T) {
	src := &RawIM{}
	v := 90.0
	got, err := src.Estimate(nil, &v)
	if err != nil || got != 90 {
		t.Fatalf("Estimate = %g, %v", got, err)
	}
	got, _ = src.Estimate(nil, nil)
	if got != 90 {
		t.Fatal("stale estimate must hold the last reading")
	}
}

// Shared trained model for the closed-loop tests.
var (
	modelOnce sync.Once
	model     *core.HighRPM
	modelErr  error
)

func trainedModel(t *testing.T) *core.HighRPM {
	t.Helper()
	modelOnce.Do(func() {
		cfg := dataset.DefaultGenerateConfig()
		cfg.SamplesPerSuite = 150
		train := &dataset.Set{}
		for _, s := range []string{workload.SuiteHPCC, workload.SuiteSPEC} {
			set, err := dataset.GenerateSuite(cfg, s)
			if err != nil {
				modelErr = err
				return
			}
			train.Append(set)
		}
		opts := core.DefaultOptions()
		opts.ActiveLearning = false
		opts.Dynamic.Epochs = 5
		opts.Dynamic.MaxWindows = 150
		model, modelErr = core.Train(train, opts)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func governedBench(t *testing.T) workload.Benchmark {
	t.Helper()
	b, err := workload.Find("Graph500/bfs")
	if err != nil {
		t.Fatal(err)
	}
	b.Repeat = 8
	return b
}

func TestRunValidation(t *testing.T) {
	node, err := platform.NewNode(platform.ARMConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(node, governedBench(t), &RawIM{}, &Hysteresis{}, Config{}); err == nil {
		t.Fatal("zero cap must fail")
	}
}

func TestGovernedRunRespectsCap(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	b := governedBench(t)
	// Uncapped reference.
	free, err := platform.NewNode(platform.ARMConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	uncapped := free.Run(b, 4000, 1)

	node, err := platform.NewNode(platform.ARMConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	src := NewModelSource(trainedModel(t))
	out, err := Run(node, b, src, &Hysteresis{}, Config{CapWatts: 95, MissInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.PeakW >= uncapped.PeakPower() {
		t.Fatalf("governed peak %g not below uncapped %g", out.PeakW, uncapped.PeakPower())
	}
	if out.OverCapSeconds > 0.4*out.CompletionSeconds {
		t.Fatalf("over cap %g of %g s", out.OverCapSeconds, out.CompletionSeconds)
	}
}

func TestModelSourceBeatsRawOnOverCapTime(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	b := governedBench(t)
	// Cap 100 W sits in the regime where the governor actually moves
	// between DVFS levels; lower caps pin both runs at the bottom level
	// and the estimate source cannot matter.
	run := func(src Source) Outcome {
		node, err := platform.NewNode(platform.ARMConfig(), 3)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(node, b, src, &Hysteresis{MarginFrac: 0.15}, Config{CapWatts: 100, MissInterval: 10})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	raw := run(&RawIM{})
	hr := run(NewModelSource(trainedModel(t)))
	if hr.OverCapSeconds >= raw.OverCapSeconds {
		t.Fatalf("HighRPM source over-cap %g must beat raw IM %g (the Fig. 1 story)",
			hr.OverCapSeconds, raw.OverCapSeconds)
	}
}
