package linmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

// linearData builds y = coef·x + intercept (+ optional noise).
func linearData(n int, coef []float64, intercept, noise float64, seed int64) (*mat.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, len(coef))
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := range coef {
			x.Set(i, j, rng.NormFloat64()*3)
		}
		y[i] = mat.Dot(x.Row(i), coef) + intercept + rng.NormFloat64()*noise
	}
	return x, y
}

func TestLinearRecoversExact(t *testing.T) {
	coef := []float64{2, -3, 0.5}
	x, y := linearData(100, coef, 7, 0, 1)
	m := NewLinear()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for j := range coef {
		if math.Abs(m.Weights[j]-coef[j]) > 1e-6 {
			t.Fatalf("weight %d = %g want %g", j, m.Weights[j], coef[j])
		}
	}
	if math.Abs(m.Intercept-7) > 1e-6 {
		t.Fatalf("intercept = %g want 7", m.Intercept)
	}
	if got := m.Predict([]float64{1, 1, 1}); math.Abs(got-(2-3+0.5+7)) > 1e-6 {
		t.Fatalf("Predict = %g", got)
	}
}

// Property: on noise-free data of any shape, OLS reproduces the targets.
func TestLinearInterpolatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		coef := make([]float64, p)
		for j := range coef {
			coef[j] = rng.NormFloat64() * 5
		}
		x, y := linearData(p*5+10, coef, rng.NormFloat64(), 0, seed+1)
		m := NewLinear()
		if err := m.Fit(x, y); err != nil {
			return false
		}
		for i := 0; i < x.Rows(); i++ {
			if math.Abs(m.Predict(x.Row(i))-y[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearShapeMismatch(t *testing.T) {
	if err := NewLinear().Fit(mat.NewDense(3, 2), []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestLinearPredictUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLinear().Predict([]float64{1})
}

func TestRidgeShrinksTowardZero(t *testing.T) {
	coef := []float64{5}
	x, y := linearData(60, coef, 0, 0.1, 3)
	small := NewRidge(0.001)
	big := NewRidge(1e6)
	if err := small.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.Weights[0]) >= math.Abs(small.Weights[0]) {
		t.Fatalf("ridge did not shrink: %g vs %g", big.Weights[0], small.Weights[0])
	}
	if math.Abs(small.Weights[0]-5) > 0.1 {
		t.Fatalf("light ridge weight = %g want ~5", small.Weights[0])
	}
}

func TestRidgeInterceptUnpenalised(t *testing.T) {
	// Large intercept, zero slope: heavy ridge must keep the intercept.
	x, y := linearData(60, []float64{0}, 100, 0.01, 4)
	m := NewRidge(1e5)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-100) > 0.5 {
		t.Fatalf("intercept = %g want ~100", m.Intercept)
	}
}

func TestLassoZeroesIrrelevantFeature(t *testing.T) {
	// Feature 1 is pure noise: lasso must zero it out.
	rng := rand.New(rand.NewSource(5))
	x := mat.NewDense(200, 2)
	y := make([]float64, 200)
	for i := 0; i < 200; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		y[i] = 3*x.At(i, 0) + rng.NormFloat64()*0.01
	}
	m := NewLasso(0.5)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.Weights[1] != 0 {
		t.Fatalf("lasso kept irrelevant weight %g", m.Weights[1])
	}
	if m.Weights[0] < 1 {
		t.Fatalf("lasso killed the relevant weight: %g", m.Weights[0])
	}
}

func TestLassoZeroPenaltyMatchesOLS(t *testing.T) {
	coef := []float64{2, -1}
	x, y := linearData(120, coef, 3, 0, 6)
	la := NewLasso(1e-9)
	if err := la.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for j := range coef {
		if math.Abs(la.Weights[j]-coef[j]) > 1e-3 {
			t.Fatalf("weight %d = %g want %g", j, la.Weights[j], coef[j])
		}
	}
}

func TestSGDApproximatesLinear(t *testing.T) {
	coef := []float64{1.5, -2}
	x, y := linearData(300, coef, 4, 0.05, 7)
	// SGD assumes standardized inputs.
	s := &model.ScaledRegressor{Inner: NewSGD(1)}
	if err := s.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var sq float64
	for i := 0; i < x.Rows(); i++ {
		d := s.Predict(x.Row(i)) - y[i]
		sq += d * d
	}
	rmse := math.Sqrt(sq / float64(x.Rows()))
	if rmse > 0.5 {
		t.Fatalf("SGD RMSE = %g want < 0.5", rmse)
	}
}

func TestSGDDeterministicPerSeed(t *testing.T) {
	x, y := linearData(50, []float64{2}, 0, 0.1, 8)
	a := NewSGD(42)
	b := NewSGD(42)
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if a.Weights[0] != b.Weights[0] || a.Intercept != b.Intercept {
		t.Fatal("same seed must give identical SGD fits")
	}
}

func TestPersistenceRoundTrips(t *testing.T) {
	coef := []float64{2, -1}
	x, y := linearData(80, coef, 1, 0, 9)
	probe := []float64{0.3, -0.7}

	for _, m := range []interface {
		model.Regressor
		model.Persistable
	}{NewLinear(), NewRidge(1.0), NewLasso(0.001)} {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		data, err := model.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := model.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		reg, ok := back.(model.Regressor)
		if !ok {
			t.Fatalf("decoded %T is not a Regressor", back)
		}
		if got, want := reg.Predict(probe), m.Predict(probe); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%T round trip: %g vs %g", m, got, want)
		}
	}
}
