// Package linmodel implements the four linear baselines of Table 4:
// ordinary least squares (LR, Powell et al. style), Ridge, Lasso with
// coordinate descent, and an SGD regressor with squared-error loss. These
// are the models HighRPM is compared against in Tables 5, 7 and 9.
package linmodel

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"highrpm/internal/mat"
	"highrpm/internal/model"
)

// ErrNotFitted is returned from Predict on an untrained model.
var ErrNotFitted = errors.New("linmodel: model is not fitted")

// Linear is an ordinary-least-squares regressor (abbreviation LR).
type Linear struct {
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

// NewLinear returns an untrained OLS regressor.
func NewLinear() *Linear { return &Linear{} }

// Fit solves the normal equations for the weight vector and intercept.
func (l *Linear) Fit(x *mat.Dense, y []float64) error {
	r, c := x.Dims()
	if r != len(y) {
		return fmt.Errorf("linmodel: %d rows vs %d targets", r, len(y))
	}
	aug := mat.NewDense(r, c+1)
	for i := 0; i < r; i++ {
		row := aug.Row(i)
		copy(row, x.Row(i))
		row[c] = 1
	}
	w, err := mat.SolveLeastSquares(aug, y)
	if err != nil {
		return fmt.Errorf("linmodel: fit: %w", err)
	}
	l.Weights = w[:c]
	l.Intercept = w[c]
	return nil
}

// Predict evaluates the linear model on one feature vector.
func (l *Linear) Predict(features []float64) float64 {
	if l.Weights == nil {
		panic(ErrNotFitted)
	}
	return mat.Dot(l.Weights, features) + l.Intercept
}

// Ridge is an L2-regularised linear regressor (abbreviation RR).
type Ridge struct {
	Alpha     float64   `json:"alpha"`
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

// NewRidge returns a Ridge regressor with penalty alpha (sklearn default 1.0).
func NewRidge(alpha float64) *Ridge { return &Ridge{Alpha: alpha} }

// Fit solves (XᵀX + αI)w = Xᵀy with a centred intercept (the intercept is
// not penalised, matching scikit-learn's solver=auto behaviour).
func (rr *Ridge) Fit(x *mat.Dense, y []float64) error {
	r, c := x.Dims()
	if r != len(y) {
		return fmt.Errorf("linmodel: %d rows vs %d targets", r, len(y))
	}
	// Centre features and target so the intercept absorbs the means.
	xm := make([]float64, c)
	for j := 0; j < c; j++ {
		xm[j] = mat.Mean(x.Col(j))
	}
	ym := mat.Mean(y)
	cx := mat.NewDense(r, c)
	cy := make([]float64, r)
	for i := 0; i < r; i++ {
		row := x.Row(i)
		crow := cx.Row(i)
		for j := 0; j < c; j++ {
			crow[j] = row[j] - xm[j]
		}
		cy[i] = y[i] - ym
	}
	g := mat.Gram(cx)
	for j := 0; j < c; j++ {
		g.Add(j, j, rr.Alpha)
	}
	rhs := mat.MulTVec(cx, cy)
	w, err := mat.SolveCholesky(g, rhs)
	if err != nil {
		return fmt.Errorf("linmodel: ridge fit: %w", err)
	}
	rr.Weights = w
	rr.Intercept = ym - mat.Dot(w, xm)
	return nil
}

// Predict evaluates the ridge model on one feature vector.
func (rr *Ridge) Predict(features []float64) float64 {
	if rr.Weights == nil {
		panic(ErrNotFitted)
	}
	return mat.Dot(rr.Weights, features) + rr.Intercept
}

// Lasso is an L1-regularised linear regressor (abbreviation LaR) trained by
// cyclic coordinate descent with soft thresholding.
type Lasso struct {
	Alpha     float64   `json:"alpha"`
	MaxIter   int       `json:"max_iter"`
	Tol       float64   `json:"tol"`
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

// NewLasso returns a Lasso regressor with penalty alpha; maxIter/tol take
// scikit-like defaults when zero.
func NewLasso(alpha float64) *Lasso { return &Lasso{Alpha: alpha, MaxIter: 1000, Tol: 1e-6} }

// Fit runs coordinate descent on the centred problem.
func (la *Lasso) Fit(x *mat.Dense, y []float64) error {
	r, c := x.Dims()
	if r != len(y) {
		return fmt.Errorf("linmodel: %d rows vs %d targets", r, len(y))
	}
	if la.MaxIter <= 0 {
		la.MaxIter = 1000
	}
	if la.Tol <= 0 {
		la.Tol = 1e-6
	}
	xm := make([]float64, c)
	for j := 0; j < c; j++ {
		xm[j] = mat.Mean(x.Col(j))
	}
	ym := mat.Mean(y)
	cols := make([][]float64, c)
	colSq := make([]float64, c)
	for j := 0; j < c; j++ {
		col := x.Col(j)
		for i := range col {
			col[i] -= xm[j]
			colSq[j] += col[i] * col[i]
		}
		cols[j] = col
	}
	resid := make([]float64, r)
	for i := range resid {
		resid[i] = y[i] - ym
	}
	w := make([]float64, c)
	lam := la.Alpha * float64(r) // sklearn scales the penalty by n
	for iter := 0; iter < la.MaxIter; iter++ {
		var maxDelta float64
		for j := 0; j < c; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = x_jᵀ(resid + w_j x_j)
			rho := mat.Dot(cols[j], resid) + w[j]*colSq[j]
			nw := softThreshold(rho, lam) / colSq[j]
			//lint:ignore floateq exact no-op check: the update is skipped only when the coordinate is bit-identical
			if nw != w[j] {
				mat.AXPY(w[j]-nw, cols[j], resid)
				if d := math.Abs(nw - w[j]); d > maxDelta {
					maxDelta = d
				}
				w[j] = nw
			}
		}
		if maxDelta < la.Tol {
			break
		}
	}
	la.Weights = w
	la.Intercept = ym - mat.Dot(w, xm)
	return nil
}

func softThreshold(x, lam float64) float64 {
	switch {
	case x > lam:
		return x - lam
	case x < -lam:
		return x + lam
	default:
		return 0
	}
}

// Predict evaluates the lasso model on one feature vector.
func (la *Lasso) Predict(features []float64) float64 {
	if la.Weights == nil {
		panic(ErrNotFitted)
	}
	return mat.Dot(la.Weights, features) + la.Intercept
}

// SGD is a linear regressor trained with stochastic gradient descent on the
// squared-error loss (Table 4: squared_error, max_iter=10000). A small L2
// penalty and inverse-scaling learning rate match scikit defaults.
type SGD struct {
	MaxIter   int     `json:"max_iter"`
	Eta0      float64 `json:"eta0"`
	Alpha     float64 `json:"alpha"`
	Seed      int64   `json:"seed"`
	Weights   []float64
	Intercept float64
}

// NewSGD returns an SGD regressor with paper/scikit defaults.
func NewSGD(seed int64) *SGD {
	return &SGD{MaxIter: 10000, Eta0: 0.01, Alpha: 1e-4, Seed: seed}
}

// Fit runs epoch-based SGD with per-sample updates. Inputs are expected to
// be standardized (wrap with model.ScaledRegressor for raw counters).
func (s *SGD) Fit(x *mat.Dense, y []float64) error {
	r, c := x.Dims()
	if r != len(y) {
		return fmt.Errorf("linmodel: %d rows vs %d targets", r, len(y))
	}
	if s.MaxIter <= 0 {
		s.MaxIter = 10000
	}
	if s.Eta0 <= 0 {
		s.Eta0 = 0.01
	}
	rng := rand.New(rand.NewSource(s.Seed))
	w := make([]float64, c)
	var b float64
	order := rng.Perm(r)
	t := 1.0
	// max_iter in scikit counts epochs; cap total updates so huge inputs
	// stay bounded while small ones still converge.
	epochs := s.MaxIter
	maxUpdates := 2_000_000
	if epochs*r > maxUpdates {
		epochs = maxUpdates / r
		if epochs < 1 {
			epochs = 1
		}
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(r, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			row := x.Row(i)
			pred := mat.Dot(w, row) + b
			g := pred - y[i]
			eta := s.Eta0 / math.Pow(t, 0.25) // inverse scaling
			for j, xv := range row {
				w[j] -= eta * (g*xv + s.Alpha*w[j])
			}
			b -= eta * g
			t++
		}
	}
	s.Weights = w
	s.Intercept = b
	return nil
}

// Predict evaluates the SGD model on one feature vector.
func (s *SGD) Predict(features []float64) float64 {
	if s.Weights == nil {
		panic(ErrNotFitted)
	}
	return mat.Dot(s.Weights, features) + s.Intercept
}

// --- persistence -----------------------------------------------------------

// Kind implements model.Persistable.
func (l *Linear) Kind() string { return "linmodel.linear" }

// MarshalState implements model.Persistable.
func (l *Linear) MarshalState() ([]byte, error) { return json.Marshal(l) }

// Kind implements model.Persistable.
func (rr *Ridge) Kind() string { return "linmodel.ridge" }

// MarshalState implements model.Persistable.
func (rr *Ridge) MarshalState() ([]byte, error) { return json.Marshal(rr) }

// Kind implements model.Persistable.
func (la *Lasso) Kind() string { return "linmodel.lasso" }

// MarshalState implements model.Persistable.
func (la *Lasso) MarshalState() ([]byte, error) { return json.Marshal(la) }

func init() {
	model.RegisterKind("linmodel.linear", func(b []byte) (any, error) {
		m := &Linear{}
		return m, json.Unmarshal(b, m)
	})
	model.RegisterKind("linmodel.ridge", func(b []byte) (any, error) {
		m := &Ridge{}
		return m, json.Unmarshal(b, m)
	})
	model.RegisterKind("linmodel.lasso", func(b []byte) (any, error) {
		m := &Lasso{}
		return m, json.Unmarshal(b, m)
	})
}

// Interface conformance checks.
var (
	_ model.Regressor = (*Linear)(nil)
	_ model.Regressor = (*Ridge)(nil)
	_ model.Regressor = (*Lasso)(nil)
	_ model.Regressor = (*SGD)(nil)
)
