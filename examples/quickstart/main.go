// Quickstart: train HighRPM on simulated benchmark traces, then restore the
// temporal and spatial resolution of a sparse node-power log.
//
// The scenario mirrors the paper's core use case: your cluster's BMC gives
// you one node-power reading every 10 seconds and nothing per-component;
// HighRPM turns that into 1 Sa/s node, CPU and memory power.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"highrpm"
)

func main() {
	// 1. Collect labeled initial samples (§4.1). On real hardware this is a
	// one-off bench-measurement campaign; here the simulator provides it.
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 300
	train := &highrpm.Set{}
	for _, suite := range []string{"SPEC", "PARSEC", "HPCC", "SMG2000"} {
		set, err := highrpm.GenerateSuite(gen, suite)
		if err != nil {
			log.Fatal(err)
		}
		train.Append(set)
	}
	fmt.Printf("training on %d labeled samples\n", train.Len())

	// 2. Train the framework: StaticTRR + DynamicTRR + SRR, then the
	// active-learning refinement pass.
	opts := highrpm.DefaultOptions()
	model, err := highrpm.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v (+%v active learning)\n",
		model.TrainStats.InitialDuration.Round(1e6),
		model.TrainStats.ActiveDuration.Round(1e6))

	// 3. Run an unseen workload and keep only what a real deployment has:
	// PMC samples at 1 Sa/s and IPMI readings every 10 s.
	bench, err := highrpm.FindBenchmark("HPCG/hpcg")
	if err != nil {
		log.Fatal(err)
	}
	node, err := highrpm.NewNode(highrpm.ARMPlatform(), 42)
	if err != nil {
		log.Fatal(err)
	}
	trace := node.RunFor(bench, 240, 1)
	test := highrpm.FromTrace(trace, "HPCG", bench.Name)
	measuredIdx := test.MeasuredIndices(10)

	// 4. Restore: sparse readings -> 1 Sa/s node power -> CPU/MEM split.
	nodePower, pcpu, pmem, err := model.Restore(test, measuredIdx, nil, highrpm.ModeDynamic)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Score against the simulator's ground truth.
	fmt.Println("\naccuracy vs ground truth (DynamicTRR online mode):")
	fmt.Printf("  node: %v\n", highrpm.Evaluate(test.NodePower(), nodePower))
	fmt.Printf("  cpu:  %v\n", highrpm.Evaluate(test.CPUPower(), pcpu))
	fmt.Printf("  mem:  %v\n", highrpm.Evaluate(test.MemPower(), pmem))

	fmt.Println("\nfirst 15 seconds of the restored log:")
	fmt.Println("  t(s)  IM?  node(W)  true   cpu(W)  true   mem(W)  true")
	measured := map[int]bool{}
	for _, i := range measuredIdx {
		measured[i] = true
	}
	for i := 0; i < 15 && i < test.Len(); i++ {
		tag := " "
		if measured[i] {
			tag = "*"
		}
		s := test.Samples[i]
		fmt.Printf("  %4.0f  %s  %7.1f %6.1f  %6.1f %6.1f  %6.1f %6.1f\n",
			s.Time, tag, nodePower[i], s.PNode, pcpu[i], s.PCPU, pmem[i], s.PMEM)
	}
	fmt.Println("\n(* = second with an actual IPMI reading; everything else is restored)")
}
