// Powercap: the Fig. 1 scenario as an application — drive a power-capping
// governor from high-resolution restored readings instead of raw 0.1 Sa/s
// IPMI readings, and compare the outcomes.
//
// A governor acting on 10-second-old readings lets Graph500's power spikes
// run past the cap; a governor fed by HighRPM's per-second estimates reacts
// within a second of each spike, and adding slope prediction preempts
// crossings entirely. The example runs three control stacks on the same
// workload (averaged over several runs) and prints peak power, over-cap
// time and energy.
//
//	go run ./examples/powercap
package main

import (
	"fmt"
	"log"

	"highrpm"
	"highrpm/internal/governor"
)

const (
	// The cap sits in the regime where the governor actually moves between
	// DVFS levels; far lower caps pin the node at the bottom level and the
	// estimate source cannot matter.
	capWatts = 100.0
	missSecs = 10
	runs     = 3
)

func main() {
	model := trainCompactModel()
	bench, err := highrpm.FindBenchmark("Graph500/bfs")
	if err != nil {
		log.Fatal(err)
	}
	bench.Repeat = 12

	fmt.Printf("power cap: %.0f W, IPMI interval: %ds, %d runs averaged\n\n", capWatts, missSecs, runs)

	type stack struct {
		label string
		src   func() highrpm.GovernorSource
		pol   func() highrpm.GovernorPolicy
	}
	stacks := []stack{
		{"raw IPMI + hysteresis", func() highrpm.GovernorSource { return &governor.RawIM{} },
			func() highrpm.GovernorPolicy { return &highrpm.HysteresisPolicy{MarginFrac: 0.15} }},
		{"HighRPM + hysteresis", func() highrpm.GovernorSource { return highrpm.NewModelSource(model) },
			func() highrpm.GovernorPolicy { return &highrpm.HysteresisPolicy{MarginFrac: 0.15} }},
		{"HighRPM + predictive", func() highrpm.GovernorSource { return highrpm.NewModelSource(model) },
			func() highrpm.GovernorPolicy {
				p := &highrpm.PredictivePolicy{Horizon: 3, Base: &highrpm.HysteresisPolicy{MarginFrac: 0.15}}
				return p
			}},
	}
	var rawOver, bestOver float64
	for si, st := range stacks {
		var peak, over, energy, runtime float64
		for k := 0; k < runs; k++ {
			node, err := highrpm.NewNode(highrpm.ARMPlatform(), int64(7+k*131))
			if err != nil {
				log.Fatal(err)
			}
			out, err := highrpm.RunGoverned(node, bench, st.src(), st.pol(), highrpm.GovernorConfig{
				CapWatts: capWatts, MissInterval: missSecs,
			})
			if err != nil {
				log.Fatal(err)
			}
			if out.PeakW > peak {
				peak = out.PeakW
			}
			over += out.OverCapSeconds / runs
			energy += out.EnergyJ / runs
			runtime += out.CompletionSeconds / runs
		}
		fmt.Printf("%-22s: peak %6.1f W, over-cap %5.1f s, energy %6.2f kJ, runtime %4.0f s\n",
			st.label, peak, over, energy/1000, runtime)
		if si == 0 {
			rawOver = over
		}
		if si == len(stacks)-1 {
			bestOver = over
		}
	}
	if rawOver > 0 {
		fmt.Printf("\nHighRPM + prediction reacts to spikes between IPMI readings: over-cap time drops %.0f%%\n",
			100*(rawOver-bestOver)/rawOver)
	}
}

// trainCompactModel trains a small model on the non-Graph500 suites so the
// governed workload is unseen.
func trainCompactModel() *highrpm.Model {
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 240
	train := &highrpm.Set{}
	for _, suite := range []string{"SPEC", "HPCC", "SMG2000", "HPCG"} {
		set, err := highrpm.GenerateSuite(gen, suite)
		if err != nil {
			log.Fatal(err)
		}
		train.Append(set)
	}
	opts := highrpm.DefaultOptions()
	opts.SetMissInterval(missSecs)
	model, err := highrpm.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}
	return model
}
