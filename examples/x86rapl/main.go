// X86rapl: the §6.3 / Table 9 scenario end to end — HighRPM on an x86 node
// where RAPL provides accurate 1 Sa/s package and DRAM power, deliberately
// sparsified to one reading every 10 seconds to create the restoration
// problem, then restored and scored against the full RAPL series.
//
//	go run ./examples/x86rapl
package main

import (
	"fmt"
	"log"

	"highrpm"
)

func main() {
	x86 := highrpm.X86Platform()
	fmt.Printf("platform: %s (%d cores, %.1f GHz max)\n\n", x86.Name, x86.Cores, x86.FreqLevels[len(x86.FreqLevels)-1])

	// Train on six suites at full RAPL resolution.
	gen := highrpm.DefaultGenerateConfig()
	gen.Platform = x86
	gen.SamplesPerSuite = 300
	train := &highrpm.Set{}
	for _, suite := range []string{"SPEC", "PARSEC", "HPCC", "Graph500", "HPL-AI", "SMG2000"} {
		set, err := highrpm.GenerateSuite(gen, suite)
		if err != nil {
			log.Fatal(err)
		}
		train.Append(set)
	}

	opts := highrpm.DefaultOptions()
	model, err := highrpm.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d samples in %v\n\n", train.Len(), model.TrainStats.InitialDuration.Round(1e6))

	// Unseen application: HPCG. Capture the trace and derive RAPL readings.
	bench, err := highrpm.FindBenchmark("HPCG/hpcg")
	if err != nil {
		log.Fatal(err)
	}
	node, err := highrpm.NewNode(x86, 99)
	if err != nil {
		log.Fatal(err)
	}
	trace := node.RunFor(bench, 300, 1)
	rapl := highrpm.RAPL{Error: 0.3}
	_ = rapl // the dataset layer reads ground truth; RAPL power shown below

	test := highrpm.FromTrace(trace, "HPCG", bench.Name)

	// Sparsify: keep one node reading every 10 s (perf would normally give
	// 1 Sa/s; the experiment recreates the paper's deliberate sparsity).
	measuredIdx := test.MeasuredIndices(10)
	fmt.Printf("RAPL series: %d s; kept %d sparse readings (0.1 Sa/s)\n", test.Len(), len(measuredIdx))

	nodePower, pcpu, pmem, err := model.Restore(test, measuredIdx, nil, highrpm.ModeDynamic)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrestoration accuracy vs full-rate ground truth:")
	fmt.Printf("  P_Node: %v\n", highrpm.Evaluate(test.NodePower(), nodePower))
	fmt.Printf("  P_CPU : %v\n", highrpm.Evaluate(test.CPUPower(), pcpu))
	fmt.Printf("  P_MEM : %v\n", highrpm.Evaluate(test.MemPower(), pmem))

	// StaticTRR for comparison (offline log analysis mode).
	nodeStatic, err := model.RestoreTemporal(test, measuredIdx, nil, highrpm.ModeStatic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStaticTRR (offline) P_Node: %v\n", highrpm.Evaluate(test.NodePower(), nodeStatic))
	fmt.Println("\nTable 9's full comparison: go run ./cmd/highrpm-bench tab9")
}
