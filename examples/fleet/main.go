// Fleet: shard one monitoring workload across two HighRPM backends behind
// the scale-out router, survive a backend outage with replication, and
// verify the fleet's merged answers are byte-identical to a single
// service fed the same samples.
//
// The walkthrough trains a compact model, starts two backend services plus
// a replicated (R=2) fleet router in front of them, and streams four
// simulated nodes through the router — agents dial the router exactly as
// they would a single service. Midway through, one backend is killed
// outright: estimates keep flowing (the surviving replica answers) and
// nothing is lost. At the end, the fleet's aggregate and stats are
// compared byte-for-byte against a reference service that saw the same
// stream.
//
//	go run ./examples/fleet
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"highrpm"
)

func main() {
	// 1. Train a compact model in-process (see examples/quickstart for the
	// full training story).
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 150
	train := &highrpm.Set{}
	for _, suite := range []string{"HPCC", "SPEC"} {
		set, err := highrpm.GenerateSuite(gen, suite)
		if err != nil {
			log.Fatal(err)
		}
		train.Append(set)
	}
	topts := highrpm.DefaultOptions()
	topts.ActiveLearning = false
	model, err := highrpm.Train(train, topts)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Start two backend services — the existing single-box service,
	// unchanged — and a reference service that will see the same stream.
	var top highrpm.FleetTopology
	backends := make([]*highrpm.Service, 2)
	for i := range backends {
		svc := highrpm.NewService(model)
		if err := svc.Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		backends[i] = svc
		top.Shards = append(top.Shards, highrpm.FleetShard{
			Name: fmt.Sprintf("ingest-%c", 'a'+i), Addr: svc.Addr(),
		})
	}
	ref := highrpm.NewService(model)
	if err := ref.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}

	// 3. Front the backends with a replicated fleet router. R=2 writes
	// every node's stream to both shards (ring owner + follower), so
	// either backend can die without losing a sample.
	opts := highrpm.DefaultTopologyOptions()
	opts.Replication = 2
	router, err := highrpm.NewRouter(top, opts)
	if err != nil {
		log.Fatal(err)
	}
	router.Logf = func(string, ...any) {} // keep the demo output clean
	if err := router.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet router on %s fronting %d shards (replication 2)\n", router.Addr(), len(top.Shards))
	for _, sh := range top.Shards {
		fmt.Printf("  shard %-10s %s\n", sh.Name, sh.Addr)
	}

	// 4. Stream four simulated nodes through the router — and, in
	// parallel, through the reference service. At second 30 one backend is
	// killed; the router fails its traffic over to the surviving replica.
	bench, err := highrpm.FindBenchmark("HPCC/FFT")
	if err != nil {
		log.Fatal(err)
	}
	const nodes, seconds, killAt = 4, 60, 30
	type sim struct {
		node     *highrpm.Node
		fa, ra   *highrpm.Agent
		lastFest highrpm.Estimate
	}
	sims := make([]*sim, nodes)
	for n := range sims {
		nodeID := fmt.Sprintf("node-%02d", n)
		node, err := highrpm.NewNode(highrpm.ARMPlatform(), int64(n)*101+1)
		if err != nil {
			log.Fatal(err)
		}
		node.Attach(bench)
		fa, err := highrpm.DialService(router.Addr(), nodeID)
		if err != nil {
			log.Fatal(err)
		}
		ra, err := highrpm.DialService(ref.Addr(), nodeID)
		if err != nil {
			log.Fatal(err)
		}
		sims[n] = &sim{node: node, fa: fa, ra: ra}
	}
	for t := 0; t < seconds; t++ {
		if t == killAt {
			fmt.Printf("\nsecond %d: killing shard %s mid-ingest\n", t, top.Shards[0].Name)
			if err := backends[0].Close(); err != nil {
				log.Fatal(err)
			}
		}
		for _, s := range sims {
			smp := s.node.Step(1)
			var measured *float64
			if t%10 == 0 {
				v := smp.PNode
				measured = &v
			}
			fest, err := s.fa.Send(smp.Time, smp.Counters.Slice(), measured)
			if err != nil {
				log.Fatal(err)
			}
			rest, err := s.ra.Send(smp.Time, smp.Counters.Slice(), measured)
			if err != nil {
				log.Fatal(err)
			}
			if fest != rest {
				log.Fatalf("estimate diverged at t=%d: fleet %+v, ref %+v", t, fest, rest)
			}
			s.lastFest = fest
		}
	}
	for _, s := range sims {
		if err := s.fa.Close(); err != nil {
			log.Fatal(err)
		}
		if err := s.ra.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streamed %d nodes × %d s through the outage; every estimate matched the reference\n", nodes, seconds)
	fmt.Printf("last estimates: node-00 %.1f W, node-03 %.1f W\n", sims[0].lastFest.PNode, sims[3].lastFest.PNode)

	// 5. Query through the router: the cluster-wide aggregate
	// scatter-gathers the surviving shards and merges per-node series in
	// sorted node order — byte-identical to the single reference service.
	fq, err := highrpm.DialService(router.Addr(), "fleet-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer fq.Close()
	rq, err := highrpm.DialService(ref.Addr(), "fleet-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer rq.Close()
	q := highrpm.QueryRequest{Channel: "p_node", From: 0, To: seconds - 1, ResolutionS: 10}
	fb, err := fq.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := rq.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fj, _ := json.Marshal(fb)
	rj, _ := json.Marshal(rb)
	if string(fj) != string(rj) {
		log.Fatalf("aggregate diverged:\nfleet %s\nref   %s", fj, rj)
	}
	fmt.Printf("\ncluster aggregate (10 s rollup) matches the reference byte-for-byte:\n  %s\n", fj)

	// 6. The router's own accounting shows what the outage cost: every
	// post-kill write failed over to the surviving replica.
	st := router.Stats()
	fmt.Printf("\nrouter stats: %d routed, %d replicated, %d failovers, %d scatter-gathers\n",
		st.Routed, st.Replicated, st.FailedOver, st.ScatterGathers)
	for _, sh := range st.Shards {
		fmt.Printf("  shard %-10s up=%-5v agents=%d degraded=%d pending=%d\n",
			sh.Name, sh.Up, sh.NodeAgents, sh.Degraded, sh.Pending)
	}
	if h := router.Health(); h.Degraded {
		fmt.Printf("health: ready but degraded (%s) — the fleet serves on while %s is down\n", h.Detail, top.Shards[0].Name)
	}

	// 7. Drain everything gracefully.
	if err := router.Shutdown(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	for _, svc := range backends[1:] {
		if err := svc.Shutdown(2 * time.Second); err != nil {
			log.Fatal(err)
		}
	}
	if err := ref.Shutdown(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
