// Datacenter: multi-node monitoring through the §4.1 deployment — HighRPM
// installed as a service on a control node, shared by compute-node agents
// over TCP. Each simulated node runs a different workload; the service
// restores every node's power per second from sparse IPMI readings and the
// example aggregates a live cluster power view.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"sync"

	"highrpm"
)

const (
	nodes    = 4
	duration = 90
	missSecs = 10
)

func main() {
	// Train once on the control node.
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 240
	train := &highrpm.Set{}
	for _, suite := range highrpm.SuiteNames() {
		set, err := highrpm.GenerateSuite(gen, suite)
		if err != nil {
			log.Fatal(err)
		}
		train.Append(set)
	}
	opts := highrpm.DefaultOptions()
	opts.SetMissInterval(missSecs)
	model, err := highrpm.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	svc := highrpm.NewService(model)
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("control-node service on %s, %d compute nodes, %ds\n\n", svc.Addr(), nodes, duration)

	workloads := []string{"HPCC/FFT", "HPCC/STREAM", "Graph500/bfs", "HPCG/hpcg"}

	type cell struct {
		est, truth float64
	}
	grid := make([][]cell, nodes) // [node][second]
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		grid[n] = make([]cell, duration)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			bench, err := highrpm.FindBenchmark(workloads[id%len(workloads)])
			if err != nil {
				log.Fatal(err)
			}
			node, err := highrpm.NewNode(highrpm.ARMPlatform(), int64(id)*977+5)
			if err != nil {
				log.Fatal(err)
			}
			agent, err := highrpm.DialService(svc.Addr(), fmt.Sprintf("node-%02d", id))
			if err != nil {
				log.Fatal(err)
			}
			defer agent.Close()
			node.Attach(bench)
			for t := 0; t < duration; t++ {
				s := node.Step(1)
				var measured *float64
				if t%missSecs == 0 {
					v := s.PNode
					measured = &v
				}
				est, err := agent.Send(s.Time, s.Counters.Slice(), measured)
				if err != nil {
					log.Fatal(err)
				}
				grid[id][t] = cell{est: est.PNode, truth: s.PNode}
			}
		}(n)
	}
	wg.Wait()

	// Cluster-level view: restored total power per 10 s bucket.
	fmt.Println("cluster power (restored vs true), 10 s buckets:")
	fmt.Println("  window      restored-W   true-W   err-W")
	for t0 := 0; t0 < duration; t0 += 10 {
		var est, truth float64
		var k int
		for t := t0; t < t0+10 && t < duration; t++ {
			for n := 0; n < nodes; n++ {
				est += grid[n][t].est
				truth += grid[n][t].truth
				k++
			}
		}
		est /= float64(k) / nodes
		truth /= float64(k) / nodes
		fmt.Printf("  [%3d,%3d)   %9.1f  %8.1f  %6.1f\n", t0, t0+10, est, truth, est-truth)
	}

	// Per-node accuracy.
	fmt.Println("\nper-node restoration accuracy:")
	for n := 0; n < nodes; n++ {
		var obs, pred []float64
		for t := 0; t < duration; t++ {
			obs = append(obs, grid[n][t].truth)
			pred = append(pred, grid[n][t].est)
		}
		fmt.Printf("  node-%02d (%-13s): %v\n", n, workloads[n%len(workloads)], highrpm.Evaluate(obs, pred))
	}

	st := svc.Stats()
	fmt.Printf("\nservice handled %d samples from %d nodes (%d were IM readings — %.0f%% of traffic restored)\n",
		st.Samples, st.Nodes, st.Measured, 100*float64(st.Samples-st.Measured)/float64(st.Samples))
}
