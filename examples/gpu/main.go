// GPU: the §6.4.4 extension as an application — restore high-resolution
// power for a discrete accelerator whose out-of-band sensor reports once
// every 10 seconds, using the GPU's own performance counters.
//
// The example also demonstrates the extension's documented limitation:
// a kernel whose relaunch period aliases the reading interval defeats
// trend-based restoration until the sensor is read faster than the
// kernel's shortest phase.
//
//	go run ./examples/gpu
package main

import (
	"fmt"
	"log"

	"highrpm/internal/gpuext"
	"highrpm/internal/stats"
)

func main() {
	cfg := gpuext.DefaultDevice()
	fmt.Printf("device: %s (%d SMs @ %.1f GHz, %.0f GB/s)\n\n", cfg.Name, cfg.SMs, cfg.ClockGHz, cfg.MemBWGBs)

	// Train on a kernel mix covering the device's power band.
	dev, err := gpuext.NewDevice(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	train := dev.RunMix(gpuext.Kernels(), 200)
	trr, err := gpuext.FitTRR(train, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained GPU TRR on %d seconds of mixed kernels\n\n", len(train.Samples))

	fmt.Println("restoration accuracy per kernel (10 s readings -> 1 Sa/s):")
	for _, k := range gpuext.Kernels() {
		testDev, err := gpuext.NewDevice(cfg, 42)
		if err != nil {
			log.Fatal(err)
		}
		test := testDev.Run(k, 200)
		m, err := trr.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %v\n", k.Name, m)
	}

	// The aliasing limitation and its remedy.
	var reduction gpuext.Kernel
	for _, k := range gpuext.Kernels() {
		if k.Name == "reduction" {
			reduction = k
		}
	}
	dev2, err := gpuext.NewDevice(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	trr2, err := gpuext.FitTRR(dev2.RunMix(gpuext.Kernels(), 200), 2)
	if err != nil {
		log.Fatal(err)
	}
	testDev, err := gpuext.NewDevice(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	test := testDev.Run(reduction, 200)
	slow, err := trr.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	var fast stats.Metrics
	if fast, err = trr2.Evaluate(test); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naliasing: reduction relaunches every 16 s; a 10 s sensor misses its 4 s troughs")
	fmt.Printf("  10 s readings: MAPE %.1f%%   (trend restoration defeated)\n", slow.MAPE)
	fmt.Printf("   2 s readings: MAPE %.1f%%   (faster than the shortest phase)\n", fast.MAPE)
}
