// Accounting: per-job energy attribution on a shared node — the
// scheduling/accounting use case the paper's introduction motivates. Three
// jobs space-share a node; the only power telemetry is the usual sparse
// IPMI stream. HighRPM restores per-second CPU/memory power, and the
// attribution layer splits those watts among the jobs by counter share,
// producing an energy ledger that is checked against ground truth.
//
//	go run ./examples/accounting
package main

import (
	"fmt"
	"log"
	"math"

	"highrpm"
	"highrpm/internal/attribution"
)

const (
	duration = 240
	missSecs = 10
)

func main() {
	model := trainCompactModel()
	mon := highrpm.NewMonitor(model)

	shared, err := attribution.NewSharedNode(highrpm.ARMPlatform(), 11)
	if err != nil {
		log.Fatal(err)
	}
	jobs := []struct {
		id    string
		bench string
		share float64
	}{
		{"job-fft", "HPCC/FFT", 0.50},
		{"job-stream", "HPCC/STREAM", 0.25},
		{"job-bfs", "Graph500/bfs", 0.25},
	}
	for _, j := range jobs {
		b, err := highrpm.FindBenchmark(j.bench)
		if err != nil {
			log.Fatal(err)
		}
		if err := shared.AddJob(j.id, b, j.share); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d jobs share the node; %d s run; IPMI every %d s\n\n", len(jobs), duration, missSecs)

	ledger := attribution.NewLedger()
	truth := map[string]float64{}
	var attrErr, truthSum float64
	for t := 0; t < duration; t++ {
		s := shared.Step()
		var measured *float64
		if t%missSecs == 0 {
			v := s.PNode
			measured = &v
		}
		// HighRPM: sparse node readings + counters -> per-second CPU/MEM.
		est, err := mon.Push(s.Counters.Slice(), measured)
		if err != nil {
			log.Fatal(err)
		}
		powers, err := attribution.Attribute(est.PCPU, est.PMEM, s.Jobs, attribution.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		ledger.Add(powers)
		for i, p := range powers {
			truth[p.JobID] += s.TruthW[i]
			attrErr += math.Abs(p.TotalW() - s.TruthW[i])
			truthSum += s.TruthW[i]
		}
	}

	fmt.Println("energy ledger (restored power + counter-share attribution):")
	fmt.Println("  job         energy-kJ  mean-W   true-kJ  err-%")
	for _, e := range ledger.Entries() {
		tj := truth[e.JobID]
		fmt.Printf("  %-11s %8.2f  %6.1f  %8.2f  %5.1f\n",
			e.JobID, e.EnergyJ/1000, e.MeanW, tj/1000, 100*math.Abs(e.EnergyJ-tj)/tj)
	}
	fmt.Printf("\nper-second attribution error: %.1f%% of delivered energy\n", 100*attrErr/truthSum)
	fmt.Println("(errors combine HighRPM restoration error with the counter-share attribution model)")
}

func trainCompactModel() *highrpm.Model {
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 240
	train := &highrpm.Set{}
	for _, suite := range []string{"SPEC", "PARSEC", "SMG2000", "HPCG"} {
		set, err := highrpm.GenerateSuite(gen, suite)
		if err != nil {
			log.Fatal(err)
		}
		train.Append(set)
	}
	opts := highrpm.DefaultOptions()
	opts.SetMissInterval(missSecs)
	model, err := highrpm.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}
	return model
}
