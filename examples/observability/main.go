// Observability: attach the metrics endpoint to a running HighRPM service
// and scrape it the way Prometheus would.
//
// The walkthrough trains a compact model, starts the cluster service plus
// the observability HTTP server, streams telemetry from two simulated
// nodes, then fetches /metrics and the JSON series API over real HTTP.
// Along the way it shows the monitoring-overhead self-metering — the
// highrpm_overhead_* series that price what the power monitor itself
// costs.
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"highrpm"
)

func main() {
	// 1. Train a compact model in-process (see examples/quickstart for the
	// full training story).
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 150
	train := &highrpm.Set{}
	for _, suite := range []string{"HPCC", "SPEC"} {
		set, err := highrpm.GenerateSuite(gen, suite)
		if err != nil {
			log.Fatal(err)
		}
		train.Append(set)
	}
	opts := highrpm.DefaultOptions()
	opts.ActiveLearning = false
	model, err := highrpm.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Start the service and export it onto a metric registry: Stats
	// counters, store stats, per-node power gauges and the overhead
	// self-meter all register here.
	svc := highrpm.NewService(model)
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	reg := highrpm.NewMetricsRegistry()
	svc.RegisterMetrics(reg)

	// 3. Start the observability endpoint. SetStore enables the JSON
	// series API; SetHealth wires /readyz to the service lifecycle.
	osrv := highrpm.NewMetricsServer(reg, highrpm.DefaultMetricsServerOptions())
	osrv.SetStore(svc.Store())
	osrv.SetHealth(svc.Health)
	if err := osrv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	base := "http://" + osrv.Addr()
	fmt.Printf("observability endpoint at %s\n", base)

	// 4. Stream one minute of telemetry from two simulated nodes, with an
	// IM (IPMI) reading every 10 s — the normal monitoring flow.
	bench, err := highrpm.FindBenchmark("HPCC/FFT")
	if err != nil {
		log.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		nodeID := fmt.Sprintf("node-%02d", n)
		node, err := highrpm.NewNode(highrpm.ARMPlatform(), int64(n)*101+1)
		if err != nil {
			log.Fatal(err)
		}
		agent, err := highrpm.DialService(svc.Addr(), nodeID)
		if err != nil {
			log.Fatal(err)
		}
		node.Attach(bench)
		for t := 0; t < 60; t++ {
			s := node.Step(1)
			var measured *float64
			if t%10 == 0 {
				v := s.PNode
				measured = &v
			}
			if _, err := agent.Send(s.Time, s.Counters.Slice(), measured); err != nil {
				log.Fatal(err)
			}
		}
		if err := agent.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// 5. Scrape /metrics like Prometheus would and show the interesting
	// families: current power per node, and what the monitoring cost.
	body := get(base + "/metrics")
	fmt.Println("\nselected /metrics series:")
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "highrpm_node_power_watts") ||
			strings.HasPrefix(line, "highrpm_overhead_ticks_total") ||
			strings.HasPrefix(line, "highrpm_overhead_wall_seconds_total") ||
			strings.HasPrefix(line, "highrpm_store_ingested_samples_total") {
			fmt.Println("  " + line)
		}
	}

	// 6. The JSON series API serves the same history the TCP query path
	// and highrpm-query -json do, byte-for-byte.
	series := get(base + "/api/v1/series?node=node-00&channel=p_node&res=10")
	fmt.Printf("\n10s rollup for node-00 over HTTP:\n  %s\n", strings.TrimSpace(series))

	ready := get(base + "/readyz")
	fmt.Printf("\n/readyz: %s", ready)

	// 7. Drain both servers gracefully.
	if err := osrv.Shutdown(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := svc.Shutdown(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}
