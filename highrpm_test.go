package highrpm_test

import (
	"math"
	"path/filepath"
	"testing"

	"highrpm"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README's
// quickstart does: generate data, train, persist, restore, monitor, serve.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training; skipped in -short")
	}
	gen := highrpm.DefaultGenerateConfig()
	gen.SamplesPerSuite = 150
	train := &highrpm.Set{}
	for _, s := range []string{"HPCC", "SPEC"} {
		set, err := highrpm.GenerateSuite(gen, s)
		if err != nil {
			t.Fatal(err)
		}
		train.Append(set)
	}

	opts := highrpm.DefaultOptions()
	opts.Dynamic.Epochs = 5
	opts.Dynamic.MaxWindows = 150
	model, err := highrpm.Train(train, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Persist and reload.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := highrpm.SaveModel(path, model); err != nil {
		t.Fatal(err)
	}
	model, err = highrpm.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}

	// Unseen workload.
	bench, err := highrpm.FindBenchmark("HPCG/hpcg")
	if err != nil {
		t.Fatal(err)
	}
	node, err := highrpm.NewNode(highrpm.ARMPlatform(), 5)
	if err != nil {
		t.Fatal(err)
	}
	trace := node.RunFor(bench, 100, 1)
	test := highrpm.FromTrace(trace, "HPCG", bench.Name)
	idx := test.MeasuredIndices(10)

	for _, mode := range []highrpm.RestoreMode{highrpm.ModeStatic, highrpm.ModeDynamic} {
		nodeP, pcpu, pmem, err := model.Restore(test, idx, nil, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodeP) != 100 || len(pcpu) != 100 || len(pmem) != 100 {
			t.Fatalf("mode %v: restore lengths wrong", mode)
		}
		m := highrpm.Evaluate(test.NodePower(), nodeP)
		if m.MAPE > 25 {
			t.Fatalf("mode %v: node MAPE %.1f%% implausibly high", mode, m.MAPE)
		}
	}

	// Streaming monitor.
	mon := highrpm.NewMonitor(model)
	for i, sm := range test.Samples[:20] {
		var measured *float64
		if i%10 == 0 {
			v := sm.PNode
			measured = &v
		}
		est, err := mon.Push(sm.PMC, measured)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(est.PNode) {
			t.Fatal("NaN estimate")
		}
	}

	// Cluster service.
	svc := highrpm.NewService(model)
	if err := svc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	agent, err := highrpm.DialService(svc.Addr(), "it-node")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	v := test.Samples[0].PNode
	est, err := agent.Send(0, test.Samples[0].PMC, &v)
	if err != nil {
		t.Fatal(err)
	}
	if !est.FromMeasurement || est.PNode != v {
		t.Fatal("service mishandled measured sample")
	}
}

func TestFacadeCatalogues(t *testing.T) {
	if got := len(highrpm.Benchmarks()); got != 96 {
		t.Fatalf("Benchmarks() = %d want 96", got)
	}
	if got := len(highrpm.SuiteNames()); got != 7 {
		t.Fatalf("SuiteNames() = %d want 7", got)
	}
	if got := len(highrpm.Combos()); got != 7 {
		t.Fatalf("Combos() = %d want 7", got)
	}
	arm, x86 := highrpm.ARMPlatform(), highrpm.X86Platform()
	if arm.Arch != "arm64" || x86.Arch != "x86_64" {
		t.Fatal("platform configs wrong")
	}
}
