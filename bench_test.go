// Package highrpm's benchmark harness: one testing.B benchmark per table
// and figure of the paper's motivation and evaluation sections, each
// regenerating its artifact at bench scale and reporting the headline
// metric alongside the usual ns/op. For paper-scale runs use
//
//	go run ./cmd/highrpm-bench -scale full
package highrpm_test

import (
	"math"
	"math/rand"
	"testing"

	"highrpm"
	"highrpm/internal/experiments"
)

func benchConfig(seed int64) experiments.Config {
	cfg := experiments.NewConfig(experiments.ScaleBench)
	cfg.Seed = seed
	return cfg
}

// BenchmarkFig1PowerCapping regenerates Fig. 1: Graph500 under a power cap
// with varying reading (PI) and action (AI) intervals.
func BenchmarkFig1PowerCapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig1(benchConfig(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		last := r.Scenarios[len(r.Scenarios)-1]
		b.ReportMetric(last.Result.PeakW, "peakW/AI30")
		b.ReportMetric(last.Result.EnergyJ/1000, "kJ/AI30")
	}
}

// BenchmarkFig2ComponentDivergence regenerates Fig. 2: FFT vs Stream
// CPU/DRAM power split.
func BenchmarkFig2ComponentDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(benchConfig(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Runs[0].AvgCPU, "fftCPUW")
		b.ReportMetric(r.Runs[1].AvgMEM, "streamMEMW")
	}
}

// BenchmarkTable5TRR regenerates Table 5 (and Table 6): TRR vs the twelve
// baselines on node-power restoration.
func BenchmarkTable5TRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunTRRComparison(ws)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Unseen["DynamicTRR"].MAPE, "dynTRR-MAPE%")
		b.ReportMetric(r.Unseen["LR"].MAPE, "LR-MAPE%")
	}
}

// BenchmarkTable6TRRModels regenerates Table 6: spline vs StaticTRR vs
// DynamicTRR. It shares Table 5's computation, so it runs only the TRR
// family here.
func BenchmarkTable6TRRModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(int64(i + 1))
		ws := experiments.NewWorkspace(cfg)
		r, err := experiments.RunFig7(ws) // spline + StaticTRR sweep, point 0 = 10 s
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[0].Spline.MAPE, "spline-MAPE%")
		b.ReportMetric(r.Points[0].StaticTRR.MAPE, "staticTRR-MAPE%")
	}
}

// BenchmarkTable7SRR regenerates Table 7: SRR vs the baselines on
// component power.
func BenchmarkTable7SRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunSRRComparison(ws)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CPUUnseen["SRR"].MAPE, "srrCPU-MAPE%")
		b.ReportMetric(r.MEMUnseen["SRR"].MAPE, "srrMEM-MAPE%")
	}
}

// BenchmarkTable8PNodeAblation regenerates Table 8: SRR with vs without
// the P_Node input feature (computed inside RunSRRComparison).
func BenchmarkTable8PNodeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunSRRComparison(ws)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WithNode["cpu/unseen"].MAPE, "withPNode-MAPE%")
		b.ReportMetric(r.WithoutNode["cpu/unseen"].MAPE, "withoutPNode-MAPE%")
	}
}

// BenchmarkTable9X86 regenerates Table 9: the full method on the x86/RAPL
// platform with deliberately sparsified readings, unseen applications.
func BenchmarkTable9X86(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunX86(benchConfig(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TRR.Unseen["DynamicTRR"].MAPE, "dynTRR-MAPE%")
		b.ReportMetric(r.SRR.CPUUnseen["SRR"].MAPE, "srrCPU-MAPE%")
	}
}

// BenchmarkFig7MissIntervalModels regenerates Fig. 7: spline vs StaticTRR
// across miss_interval settings.
func BenchmarkFig7MissIntervalModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunFig7(ws)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.Spline.MAPE, "spline@max-MAPE%")
	}
}

// BenchmarkFig8Sensitivity regenerates Fig. 8: HighRPM's sensitivity to the
// miss_interval.
func BenchmarkFig8Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunFig8(ws)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[0].Dynamic.MAPE, "dyn@10s-MAPE%")
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.Dynamic.MAPE, "dyn@max-MAPE%")
	}
}

// BenchmarkFig9Frequency regenerates Fig. 9: accuracy across the ARM DVFS
// levels on Graph500.
func BenchmarkFig9Frequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig9(benchConfig(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[0].CPU.MAPE, "cpu@1.4GHz-MAPE%")
		b.ReportMetric(r.Points[len(r.Points)-1].CPU.MAPE, "cpu@2.2GHz-MAPE%")
	}
}

// BenchmarkHyperparameterSweep regenerates the §6.4.3 analysis.
func BenchmarkHyperparameterSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunHyper(ws)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LSTMLayers[1].Node.MAPE, "2layer-MAPE%")
	}
}

// BenchmarkPredictionLatency measures the §6.4.5 per-sample prediction
// cost (paper claim: < 1 ms at node and component level).
func BenchmarkPredictionLatency(b *testing.B) {
	ws := experiments.NewWorkspace(benchConfig(1))
	r, err := experiments.RunOverhead(ws)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = r
	}
	b.ReportMetric(float64(r.PredictNode.Microseconds()), "node-us")
	b.ReportMetric(float64(r.PredictSpatial.Microseconds()), "component-us")
}

// BenchmarkGPUExtension regenerates the §6.4.4 GPU restoration experiment.
func BenchmarkGPUExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunGPU(benchConfig(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].TRR.MAPE, "gemmTRR-MAPE%")
	}
}

// BenchmarkDesignAblations regenerates the design-choice ablation table.
func BenchmarkDesignAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunAblations(ws)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StaticFull.MAPE, "static-MAPE%")
		b.ReportMetric(r.StaticNoPost.MAPE, "noAlg1-MAPE%")
	}
}

// BenchmarkJitterRobustness regenerates the §6.4.6 limitation probe.
func BenchmarkJitterRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.NewWorkspace(benchConfig(int64(i + 1)))
		r, err := experiments.RunJitter(ws)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Clean.MAPE, "clean-MAPE%")
		b.ReportMetric(r.Dropped.MAPE, "dropped-MAPE%")
	}
}

// storeWorkload deterministically generates the synthetic monitor workload
// for the tsdb benchmarks: phase-programmed power plateaus (like the
// workload suite's phases) quantised to the sensors' 0.1 W resolution,
// with an IPMI reading every tenth second and NaN gaps in between.
func storeWorkload(r *rand.Rand, i int, prev *highrpm.StorePoint) (s struct {
	PNode, PCPU, PMEM, PNodePrime, IPMI float64
}) {
	quant := func(v float64) float64 { return math.Round(v*10) / 10 }
	base := 70 + 15*float64((i/30)%3)
	node := prev.Value
	if i == 0 || i%30 == 0 || r.Float64() < 0.4 {
		node = quant(base + 2*r.NormFloat64())
	}
	prev.Value = node
	s.PNode = node
	s.PCPU = quant(0.65 * node)
	s.PMEM = quant(0.25 * node)
	s.PNodePrime = quant(node + 0.3)
	s.IPMI = math.NaN()
	if i%10 == 0 {
		s.IPMI = node
	}
	return s
}

// BenchmarkStoreIngest measures the tsdb ingest path (five channels + two
// rollup resolutions per call) and reports the compressed bytes per stored
// point against the 16 B (8 B timestamp + 8 B float64) uncompressed
// baseline.
func BenchmarkStoreIngest(b *testing.B) {
	store := highrpm.NewStore(highrpm.DefaultStoreOptions())
	r := rand.New(rand.NewSource(1))
	var prev highrpm.StorePoint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := storeWorkload(r, i, &prev)
		err := store.Ingest("node-00", float64(i), highrpm.StoreSample{
			PNode: w.PNode, PCPU: w.PCPU, PMEM: w.PMEM, PNodePrime: w.PNodePrime, IPMI: w.IPMI,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := store.Stats()
	b.ReportMetric(st.BytesPerPoint, "B/sample")
	b.ReportMetric(st.CompressionRatio, "x-compression")
}

// BenchmarkStoreIngestWAL is BenchmarkStoreIngest on a durable store with
// the default batch fsync policy: the delta between the two is the price
// of write-ahead logging every sample (the acceptance bar is <2x).
func BenchmarkStoreIngestWAL(b *testing.B) {
	opts := highrpm.DefaultStoreOptions()
	opts.Dir = b.TempDir()
	opts.Fsync = highrpm.FsyncBatch
	opts.SnapshotEvery = -1
	store, _, err := highrpm.OpenStore(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	r := rand.New(rand.NewSource(1))
	var prev highrpm.StorePoint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := storeWorkload(r, i, &prev)
		err := store.Ingest("node-00", float64(i), highrpm.StoreSample{
			PNode: w.PNode, PCPU: w.PCPU, PMEM: w.PMEM, PNodePrime: w.PNodePrime, IPMI: w.IPMI,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := store.Stats()
	b.ReportMetric(float64(st.WALBytes)/float64(b.N), "walB/sample")
}

// BenchmarkStoreQuery measures decoding a 60 s raw window and a 10 s
// rollup window out of an hour of stored history.
func BenchmarkStoreQuery(b *testing.B) {
	store := highrpm.NewStore(highrpm.DefaultStoreOptions())
	r := rand.New(rand.NewSource(1))
	var prev highrpm.StorePoint
	const hour = 3600
	for i := 0; i < hour; i++ {
		w := storeWorkload(r, i, &prev)
		if err := store.Ingest("node-00", float64(i), highrpm.StoreSample{
			PNode: w.PNode, PCPU: w.PCPU, PMEM: w.PMEM, PNodePrime: w.PNodePrime, IPMI: w.IPMI,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pts int
	for i := 0; i < b.N; i++ {
		from := float64((i * 60) % (hour - 60))
		raw, err := store.Query("node-00", highrpm.ChannelPNode, from, from+59, highrpm.ResolutionRaw)
		if err != nil {
			b.Fatal(err)
		}
		roll, err := store.Query("node-00", highrpm.ChannelPCPU, from, from+59, highrpm.Resolution10s)
		if err != nil {
			b.Fatal(err)
		}
		pts += len(raw) + len(roll)
	}
	b.ReportMetric(float64(pts)/float64(b.N), "points/op")
}
